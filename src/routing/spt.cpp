#include "routing/spt.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace bdps {

std::vector<BrokerId> ShortestPathTree::path_from(BrokerId from) const {
  std::vector<BrokerId> path;
  if (from < 0 || static_cast<std::size_t>(from) >= reachable.size() ||
      !reachable[from]) {
    return path;
  }
  BrokerId current = from;
  path.push_back(current);
  while (current != destination) {
    current = next_hop[current];
    path.push_back(current);
  }
  return path;
}

ShortestPathTree compute_tree_toward(const Graph& graph,
                                     BrokerId destination) {
  const std::size_t n = graph.broker_count();
  ShortestPathTree tree;
  tree.destination = destination;
  tree.next_hop.assign(n, kNoBroker);
  tree.stats.assign(n, PathStats{});
  tree.reachable.assign(n, false);

  // Reverse adjacency: incoming edges per broker.
  std::vector<std::vector<EdgeId>> incoming(n);
  for (std::size_t b = 0; b < n; ++b) {
    for (const EdgeId e : graph.out_edges(static_cast<BrokerId>(b))) {
      incoming[graph.edge(e).to].push_back(e);
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);

  // Min-heap on (mean path rate, broker id); the id component makes the pop
  // order — and therefore tie resolution — deterministic.
  using HeapItem = std::pair<double, BrokerId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  dist[destination] = 0.0;
  tree.reachable[destination] = true;
  heap.emplace(0.0, destination);

  std::vector<bool> done(n, false);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;

    for (const EdgeId eid : incoming[u]) {
      const Edge& e = graph.edge(eid);  // e.from -> u
      const BrokerId v = e.from;
      const double candidate = d + e.link.params().mean_ms_per_kb;
      // Strictly-better relaxation only: a finished vertex can never be
      // re-parented, so every suffix of a chosen path stays a chosen path.
      // Ties resolve deterministically through the heap's id ordering.
      if (done[v] || candidate >= dist[v]) continue;
      dist[v] = candidate;
      tree.next_hop[v] = u;
      tree.stats[v] = tree.stats[u].then_link(e.link.params());
      tree.reachable[v] = true;
      heap.emplace(candidate, v);
    }
  }
  return tree;
}

}  // namespace bdps
