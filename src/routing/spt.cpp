#include "routing/spt.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace bdps {

std::vector<BrokerId> ShortestPathTree::path_from(BrokerId from) const {
  std::vector<BrokerId> path;
  if (from < 0 || static_cast<std::size_t>(from) >= reachable.size() ||
      !reachable[from]) {
    return path;
  }
  BrokerId current = from;
  path.push_back(current);
  while (current != destination) {
    current = next_hop[current];
    path.push_back(current);
  }
  return path;
}

ShortestPathTree compute_tree_toward(const Graph& graph,
                                     BrokerId destination) {
  const std::size_t n = graph.broker_count();
  ShortestPathTree tree;
  tree.destination = destination;
  tree.next_hop.assign(n, kNoBroker);
  tree.stats.assign(n, PathStats{});
  tree.reachable.assign(n, false);

  // Reverse adjacency: incoming edges per broker.
  std::vector<std::vector<EdgeId>> incoming(n);
  for (std::size_t b = 0; b < n; ++b) {
    for (const EdgeId e : graph.out_edges(static_cast<BrokerId>(b))) {
      incoming[graph.edge(e).to].push_back(e);
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);

  // Min-heap on (mean path rate, broker id); the id component makes the pop
  // order — and therefore tie resolution — deterministic.
  using HeapItem = std::pair<double, BrokerId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  dist[destination] = 0.0;
  tree.reachable[destination] = true;
  heap.emplace(0.0, destination);

  std::vector<bool> done(n, false);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;

    for (const EdgeId eid : incoming[u]) {
      const Edge& e = graph.edge(eid);  // e.from -> u
      const BrokerId v = e.from;
      const double candidate = d + e.link.params().mean_ms_per_kb;
      // Strictly-better relaxation only: a finished vertex can never be
      // re-parented, so every suffix of a chosen path stays a chosen path.
      // Ties resolve deterministically through the heap's id ordering.
      if (done[v] || candidate >= dist[v]) continue;
      dist[v] = candidate;
      tree.next_hop[v] = u;
      tree.stats[v] = tree.stats[u].then_link(e.link.params());
      tree.reachable[v] = true;
      heap.emplace(candidate, v);
    }
  }
  return tree;
}

std::vector<BrokerId> repair_tree_toward(
    const Graph& graph, const std::vector<std::vector<EdgeId>>& incoming,
    const EdgeFlags& down, const std::vector<EdgeId>& newly_down,
    const std::vector<EdgeId>& newly_up, ShortestPathTree& tree) {
  const std::size_t n = graph.broker_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // The Dijkstra label of a broker is its remaining-path mean: stats are
  // accumulated by the exact additions compute_tree_toward used for dist,
  // so no separate distance array needs to be stored in the tree.
  std::vector<double> dist(n, kInf);
  for (std::size_t b = 0; b < n; ++b) {
    if (tree.reachable[b]) dist[b] = tree.stats[b].mean_ms_per_kb;
  }

  // ---- Severed region: brokers whose next-hop chain crossed a cut edge,
  // closed over tree children (every descendant routes through its parent).
  // Brokers outside the region keep intact — and still optimal — paths:
  // removals only delete paths, so an untouched label cannot be beaten
  // except through a newly-up edge, which the cascade below handles.
  std::vector<std::uint8_t> affected(n, 0);
  std::vector<BrokerId> stack;
  for (const EdgeId e : newly_down) {
    const Edge& edge = graph.edge(e);
    if (tree.reachable[edge.from] && tree.next_hop[edge.from] == edge.to &&
        !affected[edge.from]) {
      affected[edge.from] = 1;
      stack.push_back(edge.from);
    }
  }
  std::vector<BrokerId> region;
  if (!stack.empty()) {
    std::vector<std::vector<BrokerId>> children(n);
    for (std::size_t b = 0; b < n; ++b) {
      const auto id = static_cast<BrokerId>(b);
      if (tree.reachable[b] && id != tree.destination) {
        children[tree.next_hop[b]].push_back(id);
      }
    }
    while (!stack.empty()) {
      const BrokerId u = stack.back();
      stack.pop_back();
      region.push_back(u);
      for (const BrokerId w : children[u]) {
        if (!affected[w]) {
          affected[w] = 1;
          stack.push_back(w);
        }
      }
    }
  }
  std::sort(region.begin(), region.end());

  struct Saved {
    BrokerId next_hop;
    PathStats stats;
    bool reachable;
  };
  std::vector<Saved> saved;
  saved.reserve(region.size());
  for (const BrokerId a : region) {
    saved.push_back(Saved{tree.next_hop[a], tree.stats[a],
                          tree.reachable[a] != 0});
    dist[a] = kInf;
    tree.next_hop[a] = kNoBroker;
    tree.stats[a] = PathStats{};
    tree.reachable[a] = false;
  }

  using HeapItem = std::pair<double, BrokerId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  std::vector<std::uint8_t> touched(n, 0);
  std::vector<BrokerId> improved;  // Brokers outside the region that moved.

  // Label-correcting relaxation (labels can still improve after a push, so
  // pops carry a staleness check instead of a done set).
  const auto relax = [&](const Edge& edge) {  // edge.from relaxed via edge.to
    const BrokerId v = edge.from;
    const BrokerId parent = edge.to;
    const double candidate =
        dist[parent] + edge.link.params().mean_ms_per_kb;
    if (candidate >= dist[v]) return;
    dist[v] = candidate;
    tree.next_hop[v] = parent;
    tree.stats[v] = tree.stats[parent].then_link(edge.link.params());
    tree.reachable[v] = true;
    if (!affected[v] && !touched[v]) {
      touched[v] = 1;
      improved.push_back(v);
    }
    heap.emplace(candidate, v);
  };

  // Seeds: each severed broker's usable edges into the intact region, plus
  // every restored edge as a potential improvement for its tail.
  for (const BrokerId a : region) {
    for (const EdgeId e : graph.out_edges(a)) {
      if (down.test(e)) continue;
      const Edge& edge = graph.edge(e);
      if (!tree.reachable[edge.to]) continue;
      relax(edge);
    }
  }
  for (const EdgeId e : newly_up) {
    if (down.test(e)) continue;  // Tolerate a same-batch down+up no-op.
    const Edge& edge = graph.edge(e);
    if (!tree.reachable[edge.to]) continue;
    relax(edge);
  }

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // Stale label.
    for (const EdgeId e : incoming[u]) {
      if (down.test(e)) continue;
      relax(graph.edge(e));
    }
  }

  std::vector<BrokerId> changed;
  for (std::size_t i = 0; i < region.size(); ++i) {
    const BrokerId a = region[i];
    const Saved& s = saved[i];
    if (s.next_hop != tree.next_hop[a] ||
        s.reachable != (tree.reachable[a] != 0) ||
        !(s.stats == tree.stats[a])) {
      changed.push_back(a);
    }
  }
  changed.insert(changed.end(), improved.begin(), improved.end());
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  return changed;
}

}  // namespace bdps
