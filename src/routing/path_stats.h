// Path statistics algebra.
//
// §3.2: links are independent normals, so the per-KB rate of a path is
// TR_p ~ N(sum mu_i, sum sigma_i^2).  PathStats carries those sums plus the
// number of downstream brokers NN_p that still charge the processing delay
// PD (§5.1, eq. 4).  Concatenating path segments is therefore just
// component-wise addition.
#pragma once

#include <cmath>

#include "topology/link.h"

namespace bdps {

struct PathStats {
  /// Brokers after the current one on the remaining path (each adds PD).
  int hop_brokers = 0;
  /// Sum of link mean rates along the path (ms per KB).
  double mean_ms_per_kb = 0.0;
  /// Sum of link rate variances along the path ((ms per KB)^2).
  double variance = 0.0;

  double stddev() const { return std::sqrt(variance); }

  /// Path extension: `*this` followed by one more link into one more broker.
  PathStats then_link(const LinkParams& link) const {
    return PathStats{hop_brokers + 1, mean_ms_per_kb + link.mean_ms_per_kb,
                     variance + link.variance()};
  }

  /// Concatenation of two path segments.
  friend PathStats operator+(const PathStats& a, const PathStats& b) {
    return PathStats{a.hop_brokers + b.hop_brokers,
                     a.mean_ms_per_kb + b.mean_ms_per_kb,
                     a.variance + b.variance};
  }

  bool operator==(const PathStats& other) const = default;
};

/// The empty path (local delivery at the current broker).
inline constexpr PathStats kLocalPath{};

}  // namespace bdps
