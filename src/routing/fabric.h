// Routing fabric: subscription propagation over the overlay.
//
// Builds, for every broker, the §4.2 subscription table.  A subscription
// hosted at edge broker H is installed at every broker on the chosen
// (min-mean-rate, §3.3) path from each publisher edge broker to H; the
// entry's next hop and remaining-path statistics come from the shortest-
// path tree toward H, so they are publisher-independent (see
// routing/spt.h on suffix consistency).
//
// The fabric also owns the per-broker matching indexes (message/index.h)
// and a global index used by the metrics to compute ts_i of eq. (1).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "message/index.h"
#include "routing/spt.h"
#include "routing/subscription.h"
#include "topology/builders.h"

namespace bdps {

struct FabricOptions {
  /// Single-path routing (§3.3, the paper's choice) when false.  When true,
  /// every non-local table row gains a second entry toward the next-best
  /// neighbour (DCP-style multi-path): the same subscription is served over
  /// two links, and the simulator's duplicate suppression keeps the copies
  /// from multiplying.  Reproduces the traffic-vs-reliability trade-off the
  /// paper cites for preferring single-path.
  bool multipath = false;
  /// Keeps the believed graph, its reverse adjacency and a per-subscription
  /// row registry alive so apply_link_state can repair routing state
  /// incrementally as links fail and recover mid-run.  Incompatible with
  /// multipath (alternate rows are not repaired).
  bool repairable = false;
};

class RoutingFabric {
 public:
  /// Builds tables for `topology` with the given subscriptions.  The fabric
  /// keeps its own copy of the subscriptions; entry pointers refer into it.
  ///
  /// Thread-safety: after construction the fabric is logically const, but
  /// match_at/match_all use per-index scratch state — concurrent calls are
  /// safe only for *different* broker ids (the live runtime's one-thread-
  /// per-broker layout) and match_all must not race with itself.
  RoutingFabric(const Topology& topology,
                std::vector<Subscription> subscriptions,
                FabricOptions options = {});

  RoutingFabric(const RoutingFabric&) = delete;
  RoutingFabric& operator=(const RoutingFabric&) = delete;

  std::size_t broker_count() const { return tables_.size(); }
  std::size_t subscription_count() const { return subscriptions_.size(); }

  const Subscription& subscription(std::size_t i) const {
    return subscriptions_[i];
  }

  const SubscriptionTable& table(BrokerId broker) const {
    return tables_[broker];
  }

  /// Table rows of `broker` whose filters match `message` (uses the
  /// broker's counting index).
  std::vector<const SubscriptionEntry*> match_at(BrokerId broker,
                                                 const Message& message) const;

  /// Allocation-free variant: clears and refills `out` (callers keep a
  /// scratch vector across messages, the broker hot loop's idiom).
  void match_at(BrokerId broker, const Message& message,
                std::vector<const SubscriptionEntry*>& out) const;

  /// Indices (into subscription(i)) of all subscriptions in the system
  /// matching `message`; defines ts_i in eq. (1) and the earning ceiling of
  /// eq. (2).
  std::vector<std::size_t> match_all(const Message& message) const;

  /// The shortest-path tree toward a subscriber's home broker (shared by
  /// all subscriptions at that broker); mainly for tests and diagnostics.
  const ShortestPathTree& tree_toward(BrokerId home) const;

  bool repairable() const { return options_.repairable; }

  /// The graph routing was computed over (repairable fabrics only; engines
  /// with a differently-id'd true graph translate edge ids through it).
  const Graph& graph() const { return graph_; }

  /// Incremental routing repair after a batch of link transitions
  /// (repairable fabrics only; ids are edges of graph(), both directions of
  /// an undirected link listed explicitly).  Every affected shortest-path
  /// subtree is recomputed in place (routing/spt.h: repair_tree_toward) and
  /// the subscriptions whose install set, masks or carrying brokers moved
  /// get their table rows rewritten: stale rows are disabled in place —
  /// copies already queued keep following them — and replacements appended,
  /// each paired with a fresh matching-index filter so row-id alignment
  /// holds.  Single-threaded callers only (the engines invoke it between
  /// events / at window barriers); returns the number of rows rewritten.
  std::size_t apply_link_state(const std::vector<EdgeId>& edges_down,
                               const std::vector<EdgeId>& edges_up);

 private:
  /// One re-pointed subscription: disable its current rows, install the
  /// desired set from the repaired tree.  No-op (returning 0) when nothing
  /// it depends on changed.
  std::size_t reinstall(std::size_t sub_index, const ShortestPathTree& tree,
                        const std::vector<std::uint8_t>& changed);

  FabricOptions options_;
  std::vector<Subscription> subscriptions_;
  std::vector<SubscriptionTable> tables_;
  std::vector<SubscriptionIndex> broker_indexes_;
  SubscriptionIndex global_index_;
  std::map<BrokerId, ShortestPathTree> trees_;

  // ---- Repairable-fabric state (unused unless options_.repairable) ----
  /// Position of one live table row of a subscription: tables_[broker]'s
  /// row index (== the broker matching index's filter id).
  struct RowRef {
    BrokerId broker;
    std::uint32_t row;
  };
  Graph graph_;
  std::vector<BrokerId> publisher_edges_;
  EdgeFlags link_down_;
  std::vector<std::vector<EdgeId>> incoming_;
  std::vector<std::vector<RowRef>> rows_by_sub_;
  std::map<BrokerId, std::vector<std::size_t>> subs_by_home_;
};

}  // namespace bdps
