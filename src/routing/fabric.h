// Routing fabric: subscription propagation over the overlay.
//
// Builds, for every broker, the §4.2 subscription table.  A subscription
// hosted at edge broker H is installed at every broker on the chosen
// (min-mean-rate, §3.3) path from each publisher edge broker to H; the
// entry's next hop and remaining-path statistics come from the shortest-
// path tree toward H, so they are publisher-independent (see
// routing/spt.h on suffix consistency).
//
// The fabric also owns the per-broker matching indexes (message/index.h)
// and a global index used by the metrics to compute ts_i of eq. (1).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "matching/sharded_index.h"
#include "matching/snapshot.h"
#include "message/index.h"
#include "routing/spt.h"
#include "routing/subscription.h"
#include "topology/builders.h"

namespace bdps {

/// Which per-broker matching engine backs match_at.
enum class MatchEngine {
  /// One mutable counting index per broker (message/index.h) — the
  /// original engine, kept as the differential oracle.  Concurrent
  /// match_at calls are safe only for distinct brokers.
  kReference,
  /// Sharded, snapshot-published, covering-compressed fabric per broker
  /// (matching/sharded_index.h) — the scaling engine and the default.
  /// match_at is lock-free and safe from any number of threads, for any
  /// brokers, when each caller brings its own matching::MatchScratch.
  kSharded,
};

struct FabricOptions {
  /// Single-path routing (§3.3, the paper's choice) when false.  When true,
  /// every non-local table row gains a second entry toward the next-best
  /// neighbour (DCP-style multi-path): the same subscription is served over
  /// two links, and the simulator's duplicate suppression keeps the copies
  /// from multiplying.  Reproduces the traffic-vs-reliability trade-off the
  /// paper cites for preferring single-path.
  bool multipath = false;
  /// Keeps the believed graph, its reverse adjacency and a per-subscription
  /// row registry alive so apply_link_state can repair routing state
  /// incrementally as links fail and recover mid-run.  Incompatible with
  /// multipath (alternate rows are not repaired).
  bool repairable = false;
  /// Per-broker matching engine.  Both emit identical row sets in the
  /// canonical ascending-row order (golden-matrix pinned), so this only
  /// trades mutation/concurrency behaviour against memory layout.
  MatchEngine engine = MatchEngine::kSharded;
  /// kSharded tuning: covering/equivalence merging and hash shard count
  /// (plus the fabric's fallback shard; see MatchFabricOptions).
  /// Per-broker tables promote from ONE hash shard to match_shards once
  /// they exceed match_promote_rows rows: small tables pay for every
  /// extra shard with one more index walk per match (throughput is flat
  /// in shard count even at 100k rows — BENCH_pr8.json shard_sweep),
  /// while million-row tables need the fan-out for writer contention and
  /// rebuild cost.  The promotion is a pure layout change — match sets
  /// and their canonical order never depend on it — so scaled-clock
  /// verifies stay deterministic.  Million-row single-fabric
  /// constructions (bench/tools) size MatchFabricOptions directly.
  bool covering = true;
  std::size_t match_shards = 8;
  std::size_t match_promote_rows = 8192;
  /// Hot-root compile threshold forwarded to
  /// MatchFabricOptions::compile_hot_hits (0 disables the compile tier).
  std::size_t match_compile_hot_hits = 4;
};

class RoutingFabric {
 public:
  /// Builds tables for `topology` with the given subscriptions.  The fabric
  /// keeps its own copy of the subscriptions; entry pointers refer into it.
  ///
  /// Thread-safety: after construction the fabric is logically const.  The
  /// scratch-less match_at overload uses per-broker scratch state, so
  /// concurrent calls are safe only for *different* broker ids (the live
  /// runtime's broker-ownership layout) under either engine; with
  /// MatchEngine::kSharded the scratch-taking overload is additionally
  /// safe for the *same* broker from many threads (each caller its own
  /// scratch).  match_all must not race with itself.
  RoutingFabric(const Topology& topology,
                std::vector<Subscription> subscriptions,
                FabricOptions options = {});

  RoutingFabric(const RoutingFabric&) = delete;
  RoutingFabric& operator=(const RoutingFabric&) = delete;

  std::size_t broker_count() const { return tables_.size(); }
  std::size_t subscription_count() const { return subscriptions_.size(); }

  const Subscription& subscription(std::size_t i) const {
    return subscriptions_[i];
  }

  const SubscriptionTable& table(BrokerId broker) const {
    return tables_[broker];
  }

  /// Table rows of `broker` whose filters match `message`, in ascending
  /// row order (the canonical match order of both engines).
  std::vector<const SubscriptionEntry*> match_at(BrokerId broker,
                                                 const Message& message) const;

  /// Allocation-free variant: clears and refills `out` (callers keep a
  /// scratch vector across messages, the broker hot loop's idiom).
  void match_at(BrokerId broker, const Message& message,
                std::vector<const SubscriptionEntry*>& out) const;

  /// Fully concurrent variant (kSharded): lock-free for any broker set as
  /// long as each caller owns `scratch`.  Under kReference the scratch is
  /// ignored and the distinct-brokers contract applies.
  void match_at(BrokerId broker, const Message& message,
                matching::MatchScratch& scratch,
                std::vector<const SubscriptionEntry*>& out) const;

  /// Indices (into subscription(i)) of all subscriptions in the system
  /// matching `message`, ascending; defines ts_i in eq. (1) and the
  /// earning ceiling of eq. (2).  Returns a reference into a scratch
  /// buffer reused by the next match_all call — copy to keep (callers on
  /// the hot path iterate in place; see the thread-safety note above).
  const std::vector<std::size_t>& match_all(const Message& message) const;

  /// The shortest-path tree toward a subscriber's home broker (shared by
  /// all subscriptions at that broker); mainly for tests and diagnostics.
  const ShortestPathTree& tree_toward(BrokerId home) const;

  bool repairable() const { return options_.repairable; }

  /// The kSharded matching fabric behind `broker`'s table — compile-tier
  /// and shard-promotion statistics for tools and tests.  Null under
  /// MatchEngine::kReference.
  const matching::MatchFabric* match_fabric(BrokerId broker) const {
    return static_cast<std::size_t>(broker) < broker_fabrics_.size()
               ? broker_fabrics_[broker].get()
               : nullptr;
  }

  /// The graph routing was computed over (repairable fabrics only; engines
  /// with a differently-id'd true graph translate edge ids through it).
  const Graph& graph() const { return graph_; }

  /// Incremental routing repair after a batch of link transitions
  /// (repairable fabrics only; ids are edges of graph(), both directions of
  /// an undirected link listed explicitly).  Every affected shortest-path
  /// subtree is recomputed in place (routing/spt.h: repair_tree_toward) and
  /// the subscriptions whose install set, masks or carrying brokers moved
  /// get their table rows rewritten: stale rows are disabled in place —
  /// copies already queued keep following them — and replacements appended,
  /// each paired with a fresh matching-index filter so row-id alignment
  /// holds.  Single-threaded callers only (the engines invoke it between
  /// events / at window barriers); returns the number of rows rewritten.
  std::size_t apply_link_state(const std::vector<EdgeId>& edges_down,
                               const std::vector<EdgeId>& edges_up);

 private:
  /// One re-pointed subscription: disable its current rows, install the
  /// desired set from the repaired tree.  No-op (returning 0) when nothing
  /// it depends on changed.
  std::size_t reinstall(std::size_t sub_index, const ShortestPathTree& tree,
                        const std::vector<std::uint8_t>& changed);

  /// Registers `sub`'s filters as the next matching row of `broker` under
  /// the active engine; the returned/implied row id always equals the
  /// broker table's row index (row-id alignment).
  void install_match_row(BrokerId broker, const Subscription& sub);

  FabricOptions options_;
  std::vector<Subscription> subscriptions_;
  std::vector<SubscriptionTable> tables_;
  std::vector<SubscriptionIndex> broker_indexes_;
  SubscriptionIndex global_index_;
  std::map<BrokerId, ShortestPathTree> trees_;

  // ---- kSharded engine state ----
  /// One epoch domain shared by every broker fabric: a reader slot pins
  /// once per match regardless of broker, and retired snapshots from all
  /// brokers share one reclamation scan.
  matching::EpochDomain match_domain_;
  std::vector<std::unique_ptr<matching::MatchFabric>> broker_fabrics_;
  /// Backing scratches for the scratch-less match_at overload (the
  /// per-broker concurrency contract); unused when callers bring theirs.
  mutable std::vector<std::unique_ptr<matching::MatchScratch>>
      broker_scratches_;

  // ---- Repairable-fabric state (unused unless options_.repairable) ----
  /// Position of one live table row of a subscription: tables_[broker]'s
  /// row index (== the broker matching index's filter id).
  struct RowRef {
    BrokerId broker;
    std::uint32_t row;
  };
  Graph graph_;
  std::vector<BrokerId> publisher_edges_;
  EdgeFlags link_down_;
  std::vector<std::vector<EdgeId>> incoming_;
  std::vector<std::vector<RowRef>> rows_by_sub_;
  std::map<BrokerId, std::vector<std::size_t>> subs_by_home_;
};

}  // namespace bdps
