#include "routing/path_stats.h"

// PathStats is header-only; this TU anchors the header in the build.
