// Shortest-path trees over the overlay.
//
// §3.3: single-path routing minimising the mean transmission rate of the
// path.  We run Dijkstra *toward* each destination over reversed edges; the
// resulting in-tree gives every broker its next hop and the remaining-path
// statistics (NN_p, mu_p, sigma_p^2) in one pass, and guarantees suffix
// consistency: the remaining path of a message is independent of which
// publisher it came from, so one subscription-table entry per subscriber
// suffices (§4.2).  Ties break on broker id for determinism.
#pragma once

#include <vector>

#include "routing/path_stats.h"
#include "topology/graph.h"

namespace bdps {

/// Routing information toward one destination broker.
struct ShortestPathTree {
  BrokerId destination = kNoBroker;
  /// next_hop[b]: neighbour to forward to from broker b (kNoBroker when b
  /// is the destination or unreachable).
  std::vector<BrokerId> next_hop;
  /// stats[b]: PathStats of the chosen path b -> destination.
  std::vector<PathStats> stats;
  /// reachable[b]: whether a path exists.
  std::vector<bool> reachable;

  /// Materialises the broker sequence from `from` to the destination
  /// (inclusive of both); empty when unreachable.
  std::vector<BrokerId> path_from(BrokerId from) const;
};

/// Dijkstra on mean path rate toward `destination`.
ShortestPathTree compute_tree_toward(const Graph& graph,
                                     BrokerId destination);

}  // namespace bdps
