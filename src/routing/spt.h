// Shortest-path trees over the overlay.
//
// §3.3: single-path routing minimising the mean transmission rate of the
// path.  We run Dijkstra *toward* each destination over reversed edges; the
// resulting in-tree gives every broker its next hop and the remaining-path
// statistics (NN_p, mu_p, sigma_p^2) in one pass, and guarantees suffix
// consistency: the remaining path of a message is independent of which
// publisher it came from, so one subscription-table entry per subscriber
// suffices (§4.2).  Ties break on broker id for determinism.
#pragma once

#include <vector>

#include "routing/path_stats.h"
#include "topology/edge_map.h"
#include "topology/graph.h"

namespace bdps {

/// Routing information toward one destination broker.
struct ShortestPathTree {
  BrokerId destination = kNoBroker;
  /// next_hop[b]: neighbour to forward to from broker b (kNoBroker when b
  /// is the destination or unreachable).
  std::vector<BrokerId> next_hop;
  /// stats[b]: PathStats of the chosen path b -> destination.
  std::vector<PathStats> stats;
  /// reachable[b]: whether a path exists.
  std::vector<bool> reachable;

  /// Materialises the broker sequence from `from` to the destination
  /// (inclusive of both); empty when unreachable.
  std::vector<BrokerId> path_from(BrokerId from) const;
};

/// Dijkstra on mean path rate toward `destination`.
ShortestPathTree compute_tree_toward(const Graph& graph,
                                     BrokerId destination);

/// Incremental repair of `tree` after a batch of link state changes
/// (dynamic SPT, Ramalingam–Reps style).  `down` is the complete current
/// down-set over `graph`'s edges (already including this batch);
/// `newly_down` / `newly_up` are the edges that changed in this batch.
/// `incoming` is the reverse adjacency of `graph` (incoming edge ids per
/// broker), precomputed by the caller since every tree shares it.
///
/// Severed subtrees (brokers whose next-hop chain crossed a newly-down
/// edge, by child closure) are invalidated and re-attached through a
/// Dijkstra seeded at their boundary; newly-up edges seed a strictly-
/// improving relaxation cascade.  Only the affected region is touched —
/// unaffected brokers keep their exact next hop and PathStats, so a repair
/// after a localised outage costs far less than a full recompute.  Equal-
/// cost ties may resolve differently from a fresh compute_tree_toward
/// (path *costs* always agree; suffix consistency is preserved either
/// way).
///
/// Returns the brokers whose routing state (next hop, reachability or
/// remaining-path stats) actually changed, ascending and deduplicated.
std::vector<BrokerId> repair_tree_toward(
    const Graph& graph, const std::vector<std::vector<EdgeId>>& incoming,
    const EdgeFlags& down, const std::vector<EdgeId>& newly_down,
    const std::vector<EdgeId>& newly_up, ShortestPathTree& tree);

}  // namespace bdps
