// Subscriptions and per-broker subscription tables.
//
// §4.2: each broker keeps, for every subscription it can reach, the filter,
// the allowed delay `dl`, the price `pr`, the downstream neighbour `nb` and
// the remaining-path statistics (NN_p, mu_p, sigma_p^2).  In the PSD
// scenario the delay bound instead travels with the message, so entries
// expose an *effective* deadline/price given a message (§5, first
// paragraph: PSD reuses the SSD machinery with price = 1).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"
#include "message/filter.h"
#include "routing/path_stats.h"

namespace bdps {

struct Subscription {
  SubscriberId subscriber = 0;
  Filter filter;
  /// Additional disjuncts: the subscription is interested in messages
  /// matching `filter` OR any entry here (OR-queries; each disjunct is a
  /// conjunctive Filter, i.e. the query is in disjunctive normal form).
  std::vector<Filter> or_filters;
  /// Allowed delay `dl` (SSD).  kNoDeadline in the PSD scenario, where the
  /// publisher stamps the deadline on each message instead.
  TimeMs allowed_delay = kNoDeadline;
  /// Price `pr` the subscriber pays per valid message (SSD); 1 under PSD.
  double price = 1.0;
  /// Edge broker the subscriber is attached to.
  BrokerId home = kNoBroker;

  /// Activation window (subscription churn): the subscription is only
  /// interested in messages *published* while it is active.  Table entries
  /// stay installed for the whole run — soft state, as real brokers keep
  /// routing state across short-lived re-subscriptions — but inactive
  /// windows suppress matching, forwarding and accounting.  The default
  /// window is unbounded on both sides.
  TimeMs active_from = -kNoDeadline;
  TimeMs active_to = kNoDeadline;

  bool active_at(TimeMs publish_time) const {
    return publish_time >= active_from && publish_time < active_to;
  }

  /// Full interest check across all disjuncts (content only; callers also
  /// consult active_at for churn-aware matching).
  bool matches(const Message& message) const {
    if (filter.matches(message)) return true;
    for (const Filter& f : or_filters) {
      if (f.matches(message)) return true;
    }
    return false;
  }
};

/// One row of a broker's subscription table.
struct SubscriptionEntry {
  const Subscription* subscription = nullptr;
  /// Downstream neighbour toward the subscriber; kNoBroker when the
  /// subscriber is attached to this very broker (local delivery).
  BrokerId next_hop = kNoBroker;
  /// Id of the directed link owning-broker -> next_hop in the fabric's
  /// graph (kNoEdge for local rows).  Surfaced so per-link consumers —
  /// output queues, live sender workers, flat per-edge state — index by
  /// EdgeId without ever re-resolving the link.
  EdgeId next_hop_edge = kNoEdge;
  /// Remaining path statistics from this broker to the subscriber.
  PathStats path;
  /// Publishers whose chosen path to this subscriber passes through the
  /// owning broker (bit i = publisher i).  A message only follows entries
  /// of its own publisher: single-path routing (§3.3) means broker B
  /// forwards m toward s only when B lies on the selected
  /// publisher(m) -> s path; without this guard a broker sitting on the
  /// union of several publishers' paths would branch copies onto paths the
  /// routing protocol never selected, duplicating deliveries.
  std::uint64_t publisher_mask = ~0ULL;
  /// Routing repair (RoutingFabric::apply_link_state) retires stale rows in
  /// place instead of erasing them: erasure would renumber rows and break
  /// the row-id alignment with the broker's matching index, and copies
  /// already queued keep pointing at their original entry.  Disabled rows
  /// are skipped by the fan-out grouper, so they stop attracting new
  /// copies the instant the repair lands.
  bool disabled = false;

  bool is_local() const { return next_hop == kNoBroker; }

  bool serves_publisher(PublisherId publisher) const {
    return (publisher_mask >> static_cast<unsigned>(publisher)) & 1ULL;
  }

  /// adl(s_i) for a given message: the subscriber's own bound under SSD or
  /// the message's publisher-specified bound under PSD.  When both exist
  /// the tighter one governs (the paper's "both" extension, §4.1).
  TimeMs effective_deadline(const Message& message) const {
    const TimeMs subscriber_bound = subscription->allowed_delay;
    const TimeMs publisher_bound = message.allowed_delay();
    return subscriber_bound < publisher_bound ? subscriber_bound
                                              : publisher_bound;
  }
};

/// All table rows of one broker, plus grouping by downstream neighbour
/// (the unit the output-queue scheduler works on).
///
/// Storage is a deque, not a vector: queued copies hold raw pointers into
/// the table, and routing repair appends replacement rows mid-run — deque
/// growth never moves existing elements, so those pointers stay valid.
class SubscriptionTable {
 public:
  void add(SubscriptionEntry entry) { entries_.push_back(entry); }

  const std::deque<SubscriptionEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Mutable row access for routing repair (disabling stale rows in place).
  SubscriptionEntry& entry_at(std::size_t row) { return entries_[row]; }

  std::string to_string() const;

 private:
  std::deque<SubscriptionEntry> entries_;
};

}  // namespace bdps
