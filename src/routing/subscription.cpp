#include "routing/subscription.h"

#include <sstream>

namespace bdps {

std::string SubscriptionTable::to_string() const {
  std::ostringstream os;
  for (const auto& entry : entries_) {
    const Subscription& sub = *entry.subscription;
    os << "s" << sub.subscriber << " [" << sub.filter.to_string() << "] dl=";
    if (sub.allowed_delay == kNoDeadline) {
      os << "msg";
    } else {
      os << sub.allowed_delay << "ms";
    }
    os << " pr=" << sub.price << " nb=";
    if (entry.is_local()) {
      os << "local";
    } else {
      os << "B" << entry.next_hop;
    }
    os << " NN=" << entry.path.hop_brokers << " mu=" << entry.path.mean_ms_per_kb
       << " var=" << entry.path.variance << "\n";
  }
  return os.str();
}

}  // namespace bdps
