#include "routing/fabric.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace bdps {

namespace {

/// Second-best forwarding choice at `broker` toward the tree's destination:
/// the out-neighbour v != primary minimising link(broker->v) + dist(v),
/// skipping neighbours that would immediately bounce the copy back.
/// Returns kNoBroker when no alternative exists.
BrokerId second_best_next_hop(const Graph& graph, const ShortestPathTree& tree,
                              BrokerId broker, BrokerId primary,
                              PathStats* stats_out) {
  BrokerId best = kNoBroker;
  double best_mean = 0.0;
  PathStats best_stats;
  for (const EdgeId e : graph.out_edges(broker)) {
    const Edge& edge = graph.edge(e);
    const BrokerId v = edge.to;
    if (v == primary || !tree.reachable[v]) continue;
    if (tree.next_hop[v] == broker) continue;  // Immediate bounce-back.
    const PathStats candidate = tree.stats[v].then_link(edge.link.params());
    if (best == kNoBroker || candidate.mean_ms_per_kb < best_mean) {
      best = v;
      best_mean = candidate.mean_ms_per_kb;
      best_stats = candidate;
    }
  }
  if (best != kNoBroker && stats_out != nullptr) *stats_out = best_stats;
  return best;
}

}  // namespace

RoutingFabric::RoutingFabric(const Topology& topology,
                             std::vector<Subscription> subscriptions,
                             FabricOptions options)
    : options_(options), subscriptions_(std::move(subscriptions)) {
  if (options_.repairable && options_.multipath) {
    throw std::invalid_argument(
        "repairable fabric does not support multipath (alternate rows are "
        "not repaired)");
  }
  const std::size_t n = topology.graph.broker_count();
  tables_.resize(n);
  if (options_.engine == MatchEngine::kReference) {
    broker_indexes_.resize(n);
  } else {
    matching::MatchFabricOptions match_options;
    match_options.shards = options_.match_shards;
    match_options.covering = options_.covering;
    match_options.promote_rows = options_.match_promote_rows;
    match_options.compile_hot_hits = options_.match_compile_hot_hits;
    broker_fabrics_.resize(n);
    broker_scratches_.resize(n);
    for (std::size_t b = 0; b < n; ++b) {
      broker_fabrics_[b] = std::make_unique<matching::MatchFabric>(
          match_options, &match_domain_);
      broker_scratches_[b] = std::make_unique<matching::MatchScratch>();
    }
  }
  if (options_.repairable) {
    graph_ = topology.graph;
    publisher_edges_ = topology.publisher_edges;
    link_down_.assign(graph_.edge_count());
    incoming_.resize(n);
    for (std::size_t b = 0; b < n; ++b) {
      for (const EdgeId e : graph_.out_edges(static_cast<BrokerId>(b))) {
        incoming_[graph_.edge(e).to].push_back(e);
      }
    }
    rows_by_sub_.resize(subscriptions_.size());
    for (std::size_t i = 0; i < subscriptions_.size(); ++i) {
      subs_by_home_[subscriptions_[i].home].push_back(i);
    }
  }

  // One shortest-path tree per distinct subscriber home broker.
  for (const Subscription& sub : subscriptions_) {
    if (sub.home < 0 || static_cast<std::size_t>(sub.home) >= n) {
      throw std::invalid_argument("subscription home outside the graph");
    }
    if (!trees_.count(sub.home)) {
      trees_.emplace(sub.home, compute_tree_toward(topology.graph, sub.home));
    }
  }

  if (topology.publisher_edges.size() > 64) {
    throw std::invalid_argument(
        "RoutingFabric supports at most 64 publishers (publisher_mask)");
  }

  // Install each subscription on the union of chosen publisher->home paths,
  // remembering per broker *which* publishers route through it (the
  // publisher_mask guard; see SubscriptionEntry).
  for (std::size_t si = 0; si < subscriptions_.size(); ++si) {
    const Subscription& sub = subscriptions_[si];
    const ShortestPathTree& tree = trees_.at(sub.home);
    std::map<BrokerId, std::uint64_t> installed;  // broker -> publisher mask
    for (std::size_t p = 0; p < topology.publisher_edges.size(); ++p) {
      const BrokerId publisher_edge = topology.publisher_edges[p];
      if (!tree.reachable[publisher_edge]) continue;
      for (const BrokerId broker : tree.path_from(publisher_edge)) {
        installed[broker] |= 1ULL << p;
      }
    }
    // The home broker always carries a local-delivery row serving every
    // publisher (a message can only arrive there along an installed path).
    installed[sub.home] = ~0ULL;

    // Multi-path: brokers on a primary path additionally forward toward
    // their second-best neighbour — which means every broker on that
    // neighbour's own (primary) path to the home must carry entries too,
    // or redundant copies would die unrouted.  One level of redundancy:
    // alternate-path brokers get primary entries only.
    std::map<BrokerId, BrokerId> alt_hops;  // primary broker -> alt neighbour
    if (options.multipath) {
      std::map<BrokerId, std::uint64_t> extra;
      for (const auto& [broker, mask] : installed) {
        if (broker == sub.home) continue;
        const BrokerId alt = second_best_next_hop(
            topology.graph, tree, broker, tree.next_hop[broker], nullptr);
        if (alt == kNoBroker) continue;
        alt_hops[broker] = alt;
        for (const BrokerId w : tree.path_from(alt)) {
          extra[w] |= mask;
        }
      }
      for (const auto& [broker, mask] : extra) {
        installed[broker] |= mask;
      }
    }

    for (const auto& [broker, mask] : installed) {
      SubscriptionEntry entry;
      entry.subscription = &sub;
      entry.publisher_mask = mask;
      if (broker == sub.home) {
        entry.next_hop = kNoBroker;
        entry.path = kLocalPath;
      } else {
        entry.next_hop = tree.next_hop[broker];
        entry.next_hop_edge =
            topology.graph.edge_id(broker, entry.next_hop);
        entry.path = tree.stats[broker];
      }
      if (options_.repairable) {
        rows_by_sub_[si].push_back(RowRef{
            broker, static_cast<std::uint32_t>(tables_[broker].size())});
      }
      tables_[broker].add(entry);
      install_match_row(broker, sub);

      const auto alt_it = alt_hops.find(broker);
      if (alt_it != alt_hops.end()) {
        PathStats alt_stats;
        const BrokerId alt = second_best_next_hop(
            topology.graph, tree, broker, entry.next_hop, &alt_stats);
        if (alt == alt_it->second) {
          SubscriptionEntry alt_entry = entry;
          alt_entry.next_hop = alt;
          alt_entry.next_hop_edge = topology.graph.edge_id(broker, alt);
          alt_entry.path = alt_stats;
          tables_[broker].add(alt_entry);
          install_match_row(broker, sub);
        }
      }
    }
  }

  for (const Subscription& sub : subscriptions_) {
    const auto id = global_index_.add(sub.filter);
    for (const Filter& f : sub.or_filters) {
      global_index_.add_disjunct(id, f);
    }
  }
}

void RoutingFabric::install_match_row(BrokerId broker,
                                      const Subscription& sub) {
  if (options_.engine == MatchEngine::kReference) {
    const auto id = broker_indexes_[broker].add(sub.filter);
    for (const Filter& f : sub.or_filters) {
      broker_indexes_[broker].add_disjunct(id, f);
    }
    return;
  }
  const matching::RowId row =
      broker_fabrics_[broker]->add(sub.filter, sub.or_filters);
  (void)row;
  assert(row + 1 == tables_[broker].size() &&
         "matching row ids must mirror table row indices");
}

std::vector<const SubscriptionEntry*> RoutingFabric::match_at(
    BrokerId broker, const Message& message) const {
  std::vector<const SubscriptionEntry*> matched;
  match_at(broker, message, matched);
  return matched;
}

void RoutingFabric::match_at(
    BrokerId broker, const Message& message,
    std::vector<const SubscriptionEntry*>& out) const {
  if (options_.engine == MatchEngine::kReference) {
    out.clear();
    const SubscriptionTable& table = tables_[broker];
    for (const auto id : broker_indexes_[broker].match(message)) {
      out.push_back(&table.entries()[id]);
    }
    return;
  }
  match_at(broker, message, *broker_scratches_[broker], out);
}

void RoutingFabric::match_at(
    BrokerId broker, const Message& message, matching::MatchScratch& scratch,
    std::vector<const SubscriptionEntry*>& out) const {
  if (options_.engine == MatchEngine::kReference) {
    match_at(broker, message, out);
    return;
  }
  out.clear();
  const SubscriptionTable& table = tables_[broker];
  for (const matching::RowId row :
       broker_fabrics_[broker]->match(message, scratch)) {
    out.push_back(&table.entries()[row]);
  }
}

const std::vector<std::size_t>& RoutingFabric::match_all(
    const Message& message) const {
  return global_index_.match(message);
}

const ShortestPathTree& RoutingFabric::tree_toward(BrokerId home) const {
  return trees_.at(home);
}

std::size_t RoutingFabric::apply_link_state(
    const std::vector<EdgeId>& edges_down,
    const std::vector<EdgeId>& edges_up) {
  if (!options_.repairable) {
    throw std::logic_error(
        "apply_link_state requires FabricOptions::repairable");
  }
  for (const EdgeId e : edges_down) link_down_.set(e);
  for (const EdgeId e : edges_up) link_down_.reset(e);

  std::size_t rewritten = 0;
  std::vector<std::uint8_t> changed_flags(tables_.size(), 0);
  for (auto& [home, tree] : trees_) {
    const std::vector<BrokerId> changed = repair_tree_toward(
        graph_, incoming_, link_down_, edges_down, edges_up, tree);
    if (changed.empty()) continue;
    std::fill(changed_flags.begin(), changed_flags.end(), 0);
    for (const BrokerId b : changed) changed_flags[b] = 1;
    for (const std::size_t si : subs_by_home_.at(home)) {
      rewritten += reinstall(si, tree, changed_flags);
    }
  }
  return rewritten;
}

std::size_t RoutingFabric::reinstall(
    std::size_t sub_index, const ShortestPathTree& tree,
    const std::vector<std::uint8_t>& changed) {
  const Subscription& sub = subscriptions_[sub_index];
  // Desired install set from the repaired tree — the constructor's
  // publisher-path union (single-path; repairable excludes multipath).
  std::map<BrokerId, std::uint64_t> installed;
  for (std::size_t p = 0; p < publisher_edges_.size(); ++p) {
    const BrokerId publisher_edge = publisher_edges_[p];
    if (!tree.reachable[publisher_edge]) continue;
    for (const BrokerId broker : tree.path_from(publisher_edge)) {
      installed[broker] |= 1ULL << p;
    }
  }
  installed[sub.home] = ~0ULL;

  // Fast path: skip the rewrite when the install set, the masks and every
  // carrying broker's tree state are untouched by this repair.
  std::vector<RowRef>& rows = rows_by_sub_[sub_index];
  bool identical = rows.size() == installed.size();
  if (identical) {
    for (const RowRef& r : rows) {
      const auto it = installed.find(r.broker);
      if (it == installed.end() || changed[r.broker] != 0 ||
          tables_[r.broker].entry_at(r.row).publisher_mask != it->second) {
        identical = false;
        break;
      }
    }
  }
  if (identical) return 0;

  for (const RowRef& r : rows) {
    tables_[r.broker].entry_at(r.row).disabled = true;
  }
  rows.clear();
  for (const auto& [broker, mask] : installed) {
    SubscriptionEntry entry;
    entry.subscription = &sub;
    entry.publisher_mask = mask;
    if (broker == sub.home) {
      entry.next_hop = kNoBroker;
      entry.path = kLocalPath;
    } else {
      entry.next_hop = tree.next_hop[broker];
      entry.next_hop_edge = graph_.edge_id(broker, entry.next_hop);
      entry.path = tree.stats[broker];
    }
    rows.push_back(RowRef{
        broker, static_cast<std::uint32_t>(tables_[broker].size())});
    tables_[broker].add(entry);
    install_match_row(broker, sub);
  }
  return installed.size();
}

}  // namespace bdps
