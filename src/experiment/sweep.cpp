#include "experiment/sweep.h"

namespace bdps {

std::vector<SimResult> run_batch(const std::vector<SimConfig>& configs,
                                 ThreadPool* pool) {
  std::vector<SimResult> results(configs.size());
  if (pool != nullptr) {
    pool->parallel_for(configs.size(), [&](std::size_t i) {
      results[i] = run_simulation(configs[i]);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_simulation(configs[i]);
    }
  }
  return results;
}

SlaRun run_with_sla(const SimConfig& config, TimeMs window_ms,
                    double hit_rate_floor, double purge_ceiling) {
  SlaTracker tracker(window_ms);
  SlaRun run;
  run.result = run_simulation(config, &tracker);
  run.windows = tracker.series();
  run.time_to_recover =
      SlaTracker::time_to_recover(run.windows, hit_rate_floor, purge_ceiling);
  return run;
}

ReplicatedResult run_replicated(SimConfig base, std::size_t replications,
                                ThreadPool* pool) {
  std::vector<SimConfig> configs;
  configs.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    SimConfig config = base;
    config.seed = base.seed + i;
    configs.push_back(config);
  }
  const std::vector<SimResult> results = run_batch(configs, pool);

  ReplicatedResult summary;
  summary.replications = replications;
  for (const SimResult& r : results) {
    summary.delivery_rate.add(r.delivery_rate);
    summary.earning.add(r.earning);
    summary.receptions.add(static_cast<double>(r.receptions));
    summary.valid_deliveries.add(static_cast<double>(r.valid_deliveries));
    summary.mean_valid_delay_ms.add(r.mean_valid_delay_ms);
  }
  return summary;
}

}  // namespace bdps
