#include "experiment/paper.h"

namespace bdps {

SimConfig paper_base_config(ScenarioKind scenario,
                            double publishing_rate_per_min,
                            StrategyKind strategy, std::uint64_t seed) {
  SimConfig config;
  config.seed = seed;
  config.strategy = strategy;
  config.topology = TopologyKind::kPaper;
  config.paper_topology = PaperTopologyConfig{};  // Fig. 3 defaults.
  config.processing_delay = 2.0;
  config.purge.epsilon = 0.0005;  // 0.05% (§5.4).
  config.purge.drop_expired = true;
  config.workload.scenario = scenario;
  config.workload.publishing_rate_per_min = publishing_rate_per_min;
  config.workload.duration = hours(2.0);
  config.workload.message_size_kb = 50.0;
  return config;
}

std::vector<double> paper_publishing_rates() {
  return {1.0, 3.0, 6.0, 9.0, 12.0, 15.0};
}

std::vector<double> paper_ebpc_weights() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

std::vector<StrategyKind> paper_comparison_strategies() {
  return {StrategyKind::kEb, StrategyKind::kPc, StrategyKind::kFifo,
          StrategyKind::kRemainingLifetime};
}

}  // namespace bdps
