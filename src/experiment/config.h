// Complete description of one simulation run.
//
// A SimConfig captures everything needed to reproduce a run bit-for-bit:
// topology, workload, strategy, purge policy and the seed.  The runner
// (experiment/runner.h) turns one into a SimResult; the sweep helpers fan
// batches of them across a thread pool.
#pragma once

#include <cstdint>

#include "scheduling/purge.h"
#include "scheduling/scheduler.h"
#include "sim/faults/plan.h"
#include "topology/builders.h"
#include "workload/scenario.h"

namespace bdps {

enum class TopologyKind {
  kPaper,
  kAcyclic,
  kRandomMesh,
  kDumbbell,
  kRing,
  kGrid,
  kScaleFree,
};

std::string topology_name(TopologyKind kind);

struct SimConfig {
  std::uint64_t seed = 1;

  // ---- Strategy under test ----
  StrategyKind strategy = StrategyKind::kEb;
  double ebpc_weight = 0.5;  // r of eq. (10); only used by kEbpc.
  PurgePolicy purge;         // Defaults to the paper's eps = 0.05%.

  // ---- Delay model ----
  TimeMs processing_delay = 2.0;  // PD (§6.1).

  // ---- Workload ----
  WorkloadConfig workload;

  // ---- Topology ----
  TopologyKind topology = TopologyKind::kPaper;
  PaperTopologyConfig paper_topology;  // Used when topology == kPaper.
  // Generic knobs for the other builders.
  std::size_t broker_count = 32;
  std::size_t publisher_count = 4;
  std::size_t subscriber_count = 160;
  std::size_t extra_edges = 8;  // Random mesh only.
  std::size_t grid_rows = 4;    // Grid/torus only.
  std::size_t grid_cols = 8;
  bool grid_torus = false;
  std::size_t scale_free_edges_per_node = 2;  // Scale-free only.
  double link_mean_lo_ms_per_kb = 50.0;
  double link_mean_hi_ms_per_kb = 100.0;
  double link_stddev_ms_per_kb = 20.0;

  /// Multiplicative error injected into the link parameters brokers
  /// *believe* (routing tables, success probabilities, FT) while sends
  /// still sample the true links: mean' = mean * (1 + U(-f, f)).  0 = exact
  /// knowledge (the paper's setting).
  double belief_noise_frac = 0.0;

  /// Brokers re-estimate per-link (mu, sigma) online from completed sends
  /// (§3.2's "tools of network measurement"); combined with
  /// belief_noise_frac this shows recovery from wrong initial beliefs.
  bool online_estimation = false;

  /// Serialize each broker's processing stage (one message per PD); checks
  /// rather than assumes the paper's empty-input-queue footnote.
  bool serialize_processing = false;

  /// Forward over the two best next hops instead of one (the multi-path
  /// alternative of §3.3; DCP-style).  Brokers drop duplicate copies by
  /// message id, and the first delivery per subscriber counts.
  bool multipath = false;

  /// Back match_at with the sharded, snapshot-published, covering-
  /// compressed matching fabric (src/matching/) instead of one mutable
  /// counting index per broker.  Both engines emit identical row sets in
  /// identical order — results are bitwise-equal (golden-matrix pinned) —
  /// so this only changes scaling behaviour.
  bool sharded_matching = true;
  /// Covering/equivalence merging inside the sharded engine.
  bool match_covering = true;

  /// Distribution family the *true* per-send rates are drawn from (the
  /// schedulers' math always assumes normal, per the paper).  Non-normal
  /// shapes stress the model-mismatch robustness.
  RateShape true_rate_shape = RateShape::kNormal;

  /// Explicit failure plan: links that die mid-run (failure injection).
  std::vector<LinkFailure> link_failures;
  /// Convenience: additionally kill this many *random* links, at uniform
  /// times within the publish window (drawn from a dedicated RNG stream so
  /// the rest of the run is unaffected).
  std::size_t random_link_failures = 0;

  /// Fault-storm timeline (sim/faults/): link/broker down→up windows,
  /// region storms, flaps.  Generators are materialized against the built
  /// topology with a dedicated RNG stream (split only when the plan is
  /// non-empty, so fault-free runs are byte-identical).  Unlike
  /// link_failures, these outages *recover*.
  FaultPlan faults;
  /// Repair routing state incrementally as the fault timeline cuts and
  /// restores links: affected SPT subtrees are recomputed and subscription
  /// rows re-pointed, so brokers forward around outages instead of holding
  /// copies toward them.  Only meaningful with a non-empty `faults` plan.
  bool repair_routing = false;

  /// Extra simulated time allowed past the publish window for queues to
  /// drain before the hard stop.
  TimeMs drain_grace = minutes(30.0);

  /// Event-lane count for the sharded engine (sim/parallel/): 0 (default)
  /// runs the sequential Simulator, >= 1 runs ParallelSimulator with this
  /// many shards.  Results are bitwise identical either way (the golden
  /// suite pins this), so the knob only trades wall-clock time.
  std::size_t shards = 0;
};

/// Builds the topology this config describes (consuming randomness from
/// `rng`).
Topology build_topology(Rng& rng, const SimConfig& config);

}  // namespace bdps
