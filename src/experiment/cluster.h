// Multi-process live cluster: the brokerd control plane.
//
// One controller process owns the run; each of the config's `shards`
// daemon processes (tools/brokerd re-exec'ed with daemon=1) hosts one
// LiveMode::kSocket LiveNetwork shard.  The control plane is strictly
// request/reply over blocking loopback connections (net/socket_link.h
// BlockingConn) in the same wire format the trunks speak:
//
//   daemon -> controller   Hello{shard, role=kController}   (identify)
//   controller -> daemon   kConfig{format_live_config text}
//   daemon -> controller   kPortReply{shard, trunk port}    (world built)
//   controller -> daemon   kPorts{all trunk ports}
//   daemon -> controller   kStatusReply                     (trunks up)
//   controller -> daemon   kStart                           (driver thread
//                                                            paces local
//                                                            publishes +
//                                                            fault replay)
//   controller -> daemon   kStatus ... kStatusReply polls until every
//                          driver is done and the cluster-wide outstanding
//                          sum reads zero twice in a row (the trunks'
//                          ownership-transfer accounting makes that sum
//                          safe to read across processes)
//   controller -> daemon   kDump -> kDelivery* + kSummary   (merge)
//   controller -> daemon   kShutdown                        (exit 0)
//
// A daemon that fails sends kError{what} and exits non-zero; the
// controller folds that (and spawn/bind/timeout failures) into a
// std::runtime_error for the caller to report.
#pragma once

#include <cstdint>
#include <string>

#include "experiment/live.h"

namespace bdps {

/// Controller side: spawns `config.shards` daemons (>= 2; the config is
/// forced to LiveMode::kSocket), runs the control protocol above and
/// returns the merged result.  `brokerd_path` is the daemon executable to
/// re-exec (normally argv[0] of tools/brokerd, or the path a test
/// resolved).  Throws std::runtime_error on spawn/protocol/daemon failure;
/// spawned processes are reaped on every path.
LiveRunResult run_live_cluster(const LiveRunConfig& config,
                               const std::string& brokerd_path);

/// Daemon side: dials the controller on 127.0.0.1:`controller_port`,
/// serves shard `shard` until kShutdown.  Returns a process exit code.
int run_live_daemon(std::uint16_t controller_port, int shard);

/// Escapes a string for inclusion in a JSON double-quoted literal
/// (backslash, quote, and control characters) — the tools' error-output
/// helper.
std::string json_escape(const std::string& raw);

}  // namespace bdps
