// Batched and replicated experiment execution.
//
// Every figure in the paper is a sweep: a list of SimConfigs differing in
// one knob (publishing rate, EBPC weight, strategy).  These helpers run
// batches across a thread pool and fold multi-seed replications into
// mean +/- standard-error summaries.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "experiment/runner.h"
#include "stats/welford.h"

namespace bdps {

/// Runs each config (in order); uses `pool` when provided.
std::vector<SimResult> run_batch(const std::vector<SimConfig>& configs,
                                 ThreadPool* pool = nullptr);

/// Mean +/- stderr of the headline metrics across replications.
struct ReplicatedResult {
  Welford delivery_rate;
  Welford earning;
  Welford receptions;
  Welford valid_deliveries;
  Welford mean_valid_delay_ms;
  std::size_t replications = 0;
};

/// Runs `base` under each seed (base.seed + i for i in [0, replications)).
ReplicatedResult run_replicated(SimConfig base, std::size_t replications,
                                ThreadPool* pool = nullptr);

}  // namespace bdps
