// Batched and replicated experiment execution.
//
// Every figure in the paper is a sweep: a list of SimConfigs differing in
// one knob (publishing rate, EBPC weight, strategy).  These helpers run
// batches across a thread pool and fold multi-seed replications into
// mean +/- standard-error summaries.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "experiment/runner.h"
#include "stats/sla.h"
#include "stats/welford.h"

namespace bdps {

/// Runs each config (in order); uses `pool` when provided.
std::vector<SimResult> run_batch(const std::vector<SimConfig>& configs,
                                 ThreadPool* pool = nullptr);

/// One run graded against its SLA: the aggregate result plus the
/// fixed-window service series and the breach span (stats/sla.h).  The
/// fault-storm scenarios report through this — a storm is invisible in
/// lifetime totals but obvious in the windowed series.
struct SlaRun {
  SimResult result;
  std::vector<SlaWindow> windows;
  /// SlaTracker::time_to_recover of `windows` at the thresholds given to
  /// run_with_sla.
  TimeMs time_to_recover = 0.0;
};

/// run_simulation with an SlaTracker attached (deterministic in
/// config.seed, bitwise-stable across shard counts).
SlaRun run_with_sla(const SimConfig& config, TimeMs window_ms = 10000.0,
                    double hit_rate_floor = 0.95,
                    double purge_ceiling = 0.05);

/// Mean +/- stderr of the headline metrics across replications.
struct ReplicatedResult {
  Welford delivery_rate;
  Welford earning;
  Welford receptions;
  Welford valid_deliveries;
  Welford mean_valid_delay_ms;
  std::size_t replications = 0;
};

/// Runs `base` under each seed (base.seed + i for i in [0, replications)).
ReplicatedResult run_replicated(SimConfig base, std::size_t replications,
                                ThreadPool* pool = nullptr);

}  // namespace bdps
