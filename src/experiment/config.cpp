#include "experiment/config.h"

#include <stdexcept>

namespace bdps {

std::string topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kPaper:
      return "paper-layered";
    case TopologyKind::kAcyclic:
      return "acyclic-tree";
    case TopologyKind::kRandomMesh:
      return "random-mesh";
    case TopologyKind::kDumbbell:
      return "dumbbell";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kScaleFree:
      return "scale-free";
  }
  return "?";
}

Topology build_topology(Rng& rng, const SimConfig& config) {
  switch (config.topology) {
    case TopologyKind::kPaper:
      return build_paper_topology(rng, config.paper_topology);
    case TopologyKind::kAcyclic:
      return build_acyclic_topology(
          rng, config.broker_count, config.publisher_count,
          config.subscriber_count, config.link_mean_lo_ms_per_kb,
          config.link_mean_hi_ms_per_kb, config.link_stddev_ms_per_kb);
    case TopologyKind::kRandomMesh:
      return build_random_mesh(
          rng, config.broker_count, config.extra_edges,
          config.publisher_count, config.subscriber_count,
          config.link_mean_lo_ms_per_kb, config.link_mean_hi_ms_per_kb,
          config.link_stddev_ms_per_kb);
    case TopologyKind::kDumbbell: {
      const LinkParams edge{config.link_mean_lo_ms_per_kb,
                            config.link_stddev_ms_per_kb};
      const LinkParams bottleneck{config.link_mean_hi_ms_per_kb,
                                  config.link_stddev_ms_per_kb};
      const std::size_t leaves = std::max<std::size_t>(
          1, config.publisher_count);
      const std::size_t subs_per_leaf =
          std::max<std::size_t>(1, config.subscriber_count / leaves);
      return build_dumbbell(rng, leaves, subs_per_leaf, edge, bottleneck);
    }
    case TopologyKind::kRing:
      return build_ring(rng, config.broker_count, config.publisher_count,
                        config.subscriber_count,
                        config.link_mean_lo_ms_per_kb,
                        config.link_mean_hi_ms_per_kb,
                        config.link_stddev_ms_per_kb);
    case TopologyKind::kGrid:
      return build_grid(rng, config.grid_rows, config.grid_cols,
                        config.grid_torus, config.publisher_count,
                        config.subscriber_count,
                        config.link_mean_lo_ms_per_kb,
                        config.link_mean_hi_ms_per_kb,
                        config.link_stddev_ms_per_kb);
    case TopologyKind::kScaleFree:
      return build_scale_free(
          rng, config.broker_count, config.scale_free_edges_per_node,
          config.publisher_count, config.subscriber_count,
          config.link_mean_lo_ms_per_kb, config.link_mean_hi_ms_per_kb,
          config.link_stddev_ms_per_kb);
  }
  throw std::invalid_argument("unknown topology kind");
}

}  // namespace bdps
