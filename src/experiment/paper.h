// Canonical configurations of the paper's evaluation (§6.1) and the sweep
// axes of each figure.  Every bench binary starts from these so the
// reproduction parameters live in exactly one place.
#pragma once

#include <vector>

#include "experiment/config.h"

namespace bdps {

/// §6.1 base setup: fig. 3 topology, PD = 2 ms, eps = 0.05%, 50 KB
/// messages, 2 h period, 25%-selectivity workload.
SimConfig paper_base_config(ScenarioKind scenario,
                            double publishing_rate_per_min,
                            StrategyKind strategy, std::uint64_t seed = 1);

/// X axis of figs. 5 and 6 ("publishing rate 0..15"); 0 itself publishes
/// nothing, so the plotted points start at 1.
std::vector<double> paper_publishing_rates();

/// X axis of fig. 4: EB weight r from 0 to 100%.
std::vector<double> paper_ebpc_weights();

/// The strategy set of figs. 5 and 6.
std::vector<StrategyKind> paper_comparison_strategies();

}  // namespace bdps
