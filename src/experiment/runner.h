// One-shot simulation runner: SimConfig in, SimResult out.
#pragma once

#include "experiment/config.h"
#include "sim/simulator.h"

namespace bdps {

/// Aggregated outcome of one simulation run (value type; safe to copy
/// across threads).
struct SimResult {
  std::size_t published = 0;
  /// "Message number" of §6.1: receptions by all brokers.
  std::size_t receptions = 0;
  std::size_t deliveries = 0;
  std::size_t valid_deliveries = 0;
  /// sum(ts_i): (message, interested subscriber) pairs offered.
  std::size_t total_interested = 0;
  double delivery_rate = 0.0;      // eq. (1)
  double earning = 0.0;            // eq. (2)
  double potential_earning = 0.0;  // Oracle ceiling of eq. (2).
  std::size_t purged_expired = 0;
  std::size_t purged_hopeless = 0;
  /// Copies destroyed by injected link failures.
  std::size_t lost_copies = 0;
  /// Deepest input queue observed (serialize_processing only; else 0).
  std::size_t max_input_queue = 0;
  double mean_valid_delay_ms = 0.0;
  TimeMs end_time = 0.0;
};

/// Builds topology + workload + fabric from `config` and runs to
/// completion.  Deterministic in config.seed.
SimResult run_simulation(const SimConfig& config);

/// Same, with an event trace attached for the whole run (nullptr = none).
/// The sink sees the identical stream from either engine; stats/sla.h
/// consumes it to grade per-scenario SLA series.
SimResult run_simulation(const SimConfig& config, TraceSink* trace);

}  // namespace bdps
