#include "experiment/runner.h"

#include <algorithm>
#include <utility>

#include "routing/fabric.h"
#include "sim/parallel/parallel_simulator.h"
#include "topology/edge_map.h"
#include "workload/generator.h"

namespace bdps {

namespace {

/// Copies the true graph, multiplying each link mean by (1 + U(-f, f)).
/// Brokers then route and score with these perturbed beliefs while sends
/// sample reality.
Graph perturb_beliefs(const Graph& truth, double noise_frac, Rng& rng) {
  Graph believed(truth.broker_count());
  for (std::size_t e = 0; e < truth.edge_count(); ++e) {
    const Edge& edge = truth.edge(static_cast<EdgeId>(e));
    LinkParams params = edge.link.params();
    params.mean_ms_per_kb *= 1.0 + rng.uniform(-noise_frac, noise_frac);
    if (params.mean_ms_per_kb < LinkModel::kMinRateMsPerKb) {
      params.mean_ms_per_kb = LinkModel::kMinRateMsPerKb;
    }
    believed.add_edge(edge.from, edge.to, params);
  }
  return believed;
}

}  // namespace

SimResult run_simulation(const SimConfig& config) {
  return run_simulation(config, nullptr);
}

SimResult run_simulation(const SimConfig& config, TraceSink* trace) {
  Rng root(config.seed);
  Rng topology_rng = root.split();
  Rng workload_rng = root.split();
  Rng link_rng = root.split();
  Rng belief_rng = root.split();

  Topology topology = build_topology(topology_rng, config);
  if (config.true_rate_shape != RateShape::kNormal) {
    for (std::size_t e = 0; e < topology.graph.edge_count(); ++e) {
      Edge& edge = topology.graph.edge(static_cast<EdgeId>(e));
      LinkParams params = edge.link.params();
      params.shape = config.true_rate_shape;
      edge.link = LinkModel(params);
    }
  }

  // The graph brokers *believe* in: identical to truth unless the
  // estimation ablation injects noise.
  const Graph believed =
      config.belief_noise_frac > 0.0
          ? perturb_beliefs(topology.graph, config.belief_noise_frac,
                            belief_rng)
          : topology.graph;
  Topology believed_topology;
  believed_topology.graph = believed;
  believed_topology.publisher_edges = topology.publisher_edges;
  believed_topology.subscriber_homes = topology.subscriber_homes;

  std::vector<Subscription> subscriptions =
      generate_subscriptions(workload_rng, config.workload, topology);
  FabricOptions fabric_options;
  fabric_options.multipath = config.multipath;
  fabric_options.repairable = config.repair_routing && !config.faults.empty();
  fabric_options.engine = config.sharded_matching ? MatchEngine::kSharded
                                                  : MatchEngine::kReference;
  fabric_options.covering = config.match_covering;
  RoutingFabric fabric(believed_topology, std::move(subscriptions),
                       fabric_options);

  const auto strategy = make_strategy(config.strategy, config.ebpc_weight);

  SimulatorOptions options;
  options.processing_delay = config.processing_delay;
  options.purge = config.purge;
  options.horizon = config.workload.duration + config.drain_grace;
  options.online_estimation = config.online_estimation;
  options.dedup_arrivals = config.multipath;
  options.serialize_processing = config.serialize_processing;
  options.failures = config.link_failures;
  if (config.random_link_failures > 0 && topology.graph.edge_count() > 0) {
    Rng failure_rng = root.split();
    // Undirected links are deduplicated by their canonical (min -> max)
    // direction's edge id — one flag bit per edge instead of a pair set.
    EdgeFlags chosen(topology.graph.edge_count());
    const std::size_t limit =
        std::min(config.random_link_failures,
                 topology.graph.edge_count() / 2);
    std::size_t guard = 0;
    while (chosen.count() < limit && ++guard < 100 * limit) {
      const auto id = static_cast<EdgeId>(
          failure_rng.uniform_index(topology.graph.edge_count()));
      const Edge& edge = topology.graph.edge(id);
      const BrokerId lo = std::min(edge.from, edge.to);
      const BrokerId hi = std::max(edge.from, edge.to);
      EdgeId canonical = topology.graph.edge_id(lo, hi);
      if (canonical == kNoEdge) canonical = id;  // One-way link.
      if (chosen.test(canonical)) continue;
      chosen.set(canonical);
      options.failures.push_back(LinkFailure{
          failure_rng.uniform(0.0, config.workload.duration), lo, hi});
    }
  }

  if (!config.faults.empty()) {
    // Fault stream split only when a plan exists, so fault-free runs draw
    // the identical sequence they always did.
    Rng fault_rng = root.split();
    const FaultPlan normalized =
        materialize_faults(config.faults, topology.graph, fault_rng);
    options.faults = std::make_shared<const CompiledFaults>(
        CompiledFaults::compile(normalized, topology.graph));
    if (fabric_options.repairable) options.repair_fabric = &fabric;
  }

  options.shards = config.shards;

  std::vector<std::shared_ptr<const Message>> messages = generate_messages(
      workload_rng, config.workload, topology.publisher_count());

  const auto collect = [](const Collector& collector, TimeMs end_time) {
    SimResult result;
    result.published = collector.published();
    result.receptions = collector.receptions();
    result.deliveries = collector.deliveries();
    result.valid_deliveries = collector.valid_deliveries();
    result.total_interested = collector.total_interested();
    result.delivery_rate = collector.delivery_rate();
    result.earning = collector.earning();
    result.potential_earning = collector.potential_earning();
    result.purged_expired = collector.purges().expired;
    result.purged_hopeless = collector.purges().hopeless;
    result.lost_copies = collector.lost_copies();
    result.max_input_queue = collector.max_input_queue();
    result.mean_valid_delay_ms = collector.valid_delay().mean();
    result.end_time = end_time;
    return result;
  };

  if (options.shards > 0) {
    // Sharded engine: bitwise-identical collector output (golden-pinned),
    // one event lane per shard.
    ParallelSimulator simulator(&topology, &believed_topology.graph, &fabric,
                                strategy.get(), options, link_rng);
    simulator.set_trace(trace);
    for (auto& message : messages) {
      simulator.schedule_publish(std::move(message));
    }
    simulator.run();
    return collect(simulator.collector(), simulator.now());
  }

  Simulator simulator(&topology, &believed_topology.graph, &fabric,
                      strategy.get(), options, link_rng);
  simulator.set_trace(trace);
  for (auto& message : messages) {
    simulator.schedule_publish(std::move(message));
  }
  simulator.run();
  return collect(simulator.collector(), simulator.now());
}

}  // namespace bdps
