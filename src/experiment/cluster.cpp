#include "experiment/cluster.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "net/socket_link.h"

namespace bdps {

namespace {

void make_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

StatusReplyFrame make_status(std::uint32_t shard, const LiveNetwork& net,
                             std::uint64_t published, bool driver_done) {
  StatusReplyFrame status;
  status.shard = shard;
  status.outstanding = net.outstanding();
  status.forwards_sent = net.trunk_forwards_sent();
  status.forwards_received = net.trunk_forwards_received();
  status.receptions = net.stats().receptions();
  status.deliveries = net.stats().deliveries().size();
  status.purged = net.stats().purged();
  status.lost = net.stats().lost();
  status.published = published;
  status.driver_done = driver_done;
  return status;
}

/// Spawned daemon processes; SIGKILLed and reaped on every exit path.
class DaemonPool {
 public:
  ~DaemonPool() {
    for (const Child& child : children_) {
      if (!child.reaped) ::kill(child.pid, SIGKILL);
    }
    reap();
  }

  void spawn(const std::string& exe, std::uint16_t controller_port,
             std::size_t shard) {
    const std::string port_arg =
        "controller_port=" + std::to_string(controller_port);
    const std::string shard_arg = "shard=" + std::to_string(shard);
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("brokerd spawn failed: fork: " +
                               std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      ::execl(exe.c_str(), exe.c_str(), "daemon=1", port_arg.c_str(),
              shard_arg.c_str(), static_cast<char*>(nullptr));
      // exec failed — the parent sees a fast non-zero exit via any_dead(),
      // never a half-alive daemon.
      std::_Exit(127);
    }
    children_.push_back(Child{pid, false, false});
  }

  /// Non-blocking: true if some daemon has already exited — during the
  /// handshake that can only mean a failed exec or a startup crash.
  bool any_dead() {
    bool dead = false;
    for (Child& child : children_) {
      if (child.reaped) {
        dead = true;
        continue;
      }
      int status = 0;
      if (::waitpid(child.pid, &status, WNOHANG) == child.pid) {
        child.reaped = true;
        child.clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        dead = true;
      }
    }
    return dead;
  }

  /// True once every spawned daemon has exited cleanly.
  bool reap() {
    bool all_clean = true;
    for (Child& child : children_) {
      if (!child.reaped) {
        int status = 0;
        child.reaped = ::waitpid(child.pid, &status, 0) == child.pid;
        child.clean = child.reaped && WIFEXITED(status) &&
                      WEXITSTATUS(status) == 0;
      }
      all_clean = all_clean && child.clean;
    }
    return all_clean;
  }

 private:
  struct Child {
    pid_t pid = -1;
    bool reaped = false;
    bool clean = false;
  };
  std::vector<Child> children_;
};

[[noreturn]] void throw_daemon_error(const Frame& frame) {
  if (frame.is<ErrorFrame>()) {
    throw std::runtime_error("brokerd daemon: " + frame.as<ErrorFrame>().what);
  }
  throw std::runtime_error("brokerd protocol: unexpected frame type " +
                           std::to_string(static_cast<int>(frame.type())));
}

Frame expect_frame(BlockingConn& conn, FrameType want) {
  std::optional<Frame> frame = conn.recv_frame();
  if (!frame) {
    throw std::runtime_error("brokerd protocol: daemon connection closed");
  }
  if (frame->type() != want) throw_daemon_error(*frame);
  return std::move(*frame);
}

}  // namespace

LiveRunResult run_live_cluster(const LiveRunConfig& config,
                               const std::string& brokerd_path) {
  LiveRunConfig cluster = config;
  cluster.mode = LiveMode::kSocket;
  if (cluster.shards < 2) cluster.shards = 2;
  const std::size_t n = cluster.shards;
  const std::string config_text = format_live_config(cluster);

  TcpListener listener(0);  // Throws on bind failure.
  DaemonPool pool;
  for (std::size_t s = 0; s < n; ++s) {
    pool.spawn(brokerd_path, listener.port(), s);
  }

  // Identification: each daemon dials in and says which shard it is.
  std::vector<BlockingConn> conns(n);
  std::size_t connected = 0;
  const auto accept_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (connected < n) {
    const int fd = listener.accept_connection();
    if (fd < 0) {
      if (pool.any_dead()) {
        throw std::runtime_error(
            "brokerd spawn failed: a daemon exited before connecting "
            "(bad binary path or startup crash)");
      }
      if (std::chrono::steady_clock::now() > accept_deadline) {
        throw std::runtime_error(
            "brokerd spawn failed: daemons did not connect (spawned " +
            std::to_string(n) + ", " + std::to_string(connected) +
            " checked in)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    make_blocking(fd);
    BlockingConn conn(fd);
    const Frame hello = expect_frame(conn, FrameType::kHello);
    const HelloFrame& h = hello.as<HelloFrame>();
    if (h.role != PeerRole::kController || h.shard >= n ||
        conns[h.shard].open()) {
      throw std::runtime_error("brokerd protocol: bad daemon hello");
    }
    conns[h.shard] = std::move(conn);
    ++connected;
  }

  // Config out, trunk ports back, full port map out, readiness back.
  for (BlockingConn& conn : conns) {
    if (!conn.send_frame(Frame{ConfigFrame{config_text}})) {
      throw std::runtime_error("brokerd protocol: config send failed");
    }
  }
  PortsFrame ports;
  ports.ports.resize(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    const Frame reply = expect_frame(conns[s], FrameType::kPortReply);
    const PortReplyFrame& r = reply.as<PortReplyFrame>();
    if (r.shard >= n) throw std::runtime_error("brokerd protocol: bad shard");
    ports.ports[r.shard] = r.port;
  }
  for (BlockingConn& conn : conns) {
    if (!conn.send_frame(Frame{ports})) {
      throw std::runtime_error("brokerd protocol: ports send failed");
    }
  }
  for (BlockingConn& conn : conns) {
    expect_frame(conn, FrameType::kStatusReply);  // Trunks connected.
  }

  const auto wall_start = std::chrono::steady_clock::now();
  for (BlockingConn& conn : conns) {
    if (!conn.send_frame(Frame{StartFrame{}})) {
      throw std::runtime_error("brokerd protocol: start send failed");
    }
  }

  // Quiescence: every driver finished its schedule and the cluster-wide
  // outstanding sum reads zero on two consecutive polls.
  std::vector<StatusReplyFrame> last_status(n);
  int stable = 0;
  while (stable < 2) {
    bool all_done = true;
    std::uint64_t outstanding = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (!conns[s].send_frame(Frame{StatusFrame{}})) {
        throw std::runtime_error("brokerd protocol: status send failed");
      }
      const Frame reply = expect_frame(conns[s], FrameType::kStatusReply);
      last_status[s] = reply.as<StatusReplyFrame>();
      all_done = all_done && last_status[s].driver_done;
      outstanding += last_status[s].outstanding;
    }
    stable = (all_done && outstanding == 0) ? stable + 1 : 0;
    if (stable < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();

  // Collect: per-shard delivery stream terminated by a summary.
  LiveRunResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  for (std::size_t s = 0; s < n; ++s) {
    if (!conns[s].send_frame(Frame{DumpFrame{}})) {
      throw std::runtime_error("brokerd protocol: dump send failed");
    }
    std::uint64_t streamed = 0;
    for (;;) {
      std::optional<Frame> frame = conns[s].recv_frame();
      if (!frame) {
        throw std::runtime_error("brokerd protocol: dump stream closed");
      }
      if (frame->is<DeliveryFrame>()) {
        const DeliveryFrame& d = frame->as<DeliveryFrame>();
        result.delivery_log.push_back(
            LiveDelivery{d.subscriber, d.message, d.delay, d.valid, d.price});
        if (d.valid) ++result.valid_deliveries;
        result.earning += d.valid ? d.price : 0.0;
        ++streamed;
        continue;
      }
      if (!frame->is<SummaryFrame>()) throw_daemon_error(*frame);
      const SummaryFrame& summary = frame->as<SummaryFrame>();
      if (summary.delivery_count != streamed) {
        throw std::runtime_error("brokerd protocol: dump stream truncated");
      }
      result.published += summary.published;
      result.receptions += summary.receptions;
      result.purged += summary.purged;
      result.lost += summary.lost;
      break;
    }
    result.trunk_forwards += last_status[s].forwards_sent;
  }
  result.deliveries = result.delivery_log.size();

  for (BlockingConn& conn : conns) {
    conn.send_frame(Frame{ShutdownFrame{}});
  }
  if (!pool.reap()) {
    throw std::runtime_error("brokerd: a daemon exited uncleanly");
  }
  return result;
}

int run_live_daemon(std::uint16_t controller_port, int shard) {
  BlockingConn conn;
  if (!conn.dial(controller_port) || shard < 0) return 2;
  const auto fail = [&](const std::string& what) {
    conn.send_frame(Frame{ErrorFrame{what}});
    return 1;
  };
  try {
    HelloFrame hello;
    hello.shard = static_cast<std::uint32_t>(shard);
    hello.shard_count = 0;  // The config names the cluster size.
    hello.role = PeerRole::kController;
    if (!conn.send_frame(Frame{hello})) return 2;

    std::optional<Frame> frame = conn.recv_frame();
    if (!frame || !frame->is<ConfigFrame>()) return 2;
    LiveRunConfig config = parse_live_config(frame->as<ConfigFrame>().text);
    config.mode = LiveMode::kSocket;
    const LiveWorld world = build_live_world(config);
    const std::size_t shard_count =
        std::min(std::max<std::size_t>(config.shards, 1),
                 world.topology.graph.broker_count());
    if (static_cast<std::size_t>(shard) >= shard_count) {
      return fail("shard out of range");
    }
    LiveNetwork net(
        &world.topology, world.fabric.get(), world.strategy.get(),
        live_options_for(config, shard, static_cast<int>(shard_count),
                         live_broker_shards(world.topology.graph,
                                            shard_count)));
    PortReplyFrame port_reply;
    port_reply.shard = hello.shard;
    port_reply.port = net.trunk_port();
    if (!conn.send_frame(Frame{port_reply})) return 2;

    frame = conn.recv_frame();
    if (!frame || !frame->is<PortsFrame>()) return 2;
    net.connect_trunks(frame->as<PortsFrame>().ports);
    net.start();
    if (!net.wait_trunks(std::chrono::milliseconds(15000))) {
      return fail("trunks failed to connect");
    }
    if (!conn.send_frame(Frame{make_status(hello.shard, net, 0, false)})) {
      return 2;
    }

    frame = conn.recv_frame();
    if (!frame || !frame->is<StartFrame>()) return 2;
    std::atomic<std::uint64_t> published{0};
    std::atomic<bool> driver_done{false};
    std::thread driver([&] {
      published.store(drive_live_schedule(world, {&net}),
                      std::memory_order_relaxed);
      driver_done.store(true, std::memory_order_release);
    });

    int code = 2;
    while ((frame = conn.recv_frame())) {
      if (frame->is<StatusFrame>()) {
        if (!conn.send_frame(Frame{make_status(
                hello.shard, net, published.load(std::memory_order_relaxed),
                driver_done.load(std::memory_order_acquire))})) {
          break;
        }
      } else if (frame->is<DumpFrame>()) {
        driver.join();  // kDump only arrives after driver_done was seen.
        net.drain();
        net.stop();
        const std::vector<LiveDelivery> deliveries = net.stats().deliveries();
        for (const LiveDelivery& d : deliveries) {
          conn.send_frame(Frame{DeliveryFrame{d.subscriber, d.message, d.delay,
                                              d.valid, d.price}});
        }
        SummaryFrame summary;
        summary.shard = hello.shard;
        summary.delivery_count = deliveries.size();
        summary.receptions = net.stats().receptions();
        summary.purged = net.stats().purged();
        summary.lost = net.stats().lost();
        summary.published = published.load(std::memory_order_relaxed);
        summary.earning = net.stats().earning();
        if (!conn.send_frame(Frame{summary})) break;
      } else if (frame->is<ShutdownFrame>()) {
        code = 0;
        break;
      } else {
        break;
      }
    }
    if (driver.joinable()) {
      // Controller vanished mid-run.  The driver thread may be parked in a
      // paced sleep for (scaled) hours; the process is dead either way, so
      // leave destructors behind rather than strand a zombie daemon.
      std::_Exit(2);
    }
    return code;
  } catch (const std::exception& error) {
    return fail(error.what());
  }
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace bdps
