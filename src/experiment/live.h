// Live-runtime experiment wiring: SimConfig-shaped runs through
// LiveNetwork — in one process or across a socket-backed cluster.
//
// run_simulation (experiment/runner.h) proves the scheduling math in
// virtual time; run_live replays the same topology + workload description
// through the live runtime on the scaled wall clock — the harness the
// live demo, the link-scaling bench (bench/micro_live_runtime) and the
// ceiling probe (tools/live_scaling) all share.  Messages are paced to
// their generated publish instants and published under their *generated*
// ids, so delivery records name the same (subscriber, message) pairs in
// every mode and every process.
//
// Knobs the simulator does not have: `mode` picks the in-process reactor
// or the socket-backed shard runtime, `shards` sizes a socket cluster
// (run_live itself hosts the shards in-process — the differential gate
// for tests; tools/brokerd runs one shard per OS process via the same
// building blocks), `workers` sizes each reactor pool, `speedup` maps
// simulated to real milliseconds.  A SimConfig fault plan (sim/faults/)
// is honoured in the compiler's canonical batch order: broker crashes
// wipe queues through set_broker_state, link halves churn through
// set_edge_state (down cut edges sever their trunks for real), and
// recovery batches re-arm both.  Features that need a believed-vs-true
// split (belief noise, online estimation, legacy link failures,
// multipath dedup, routing repair) are simulator-only and ignored here.
//
// The LiveWorld / drive / drain helpers are the shared contract between
// run_live and tools/brokerd: every participant rebuilds the identical
// world from the serialized config (format_live_config/parse_live_config,
// doubles as hexfloat so the round-trip is bit-exact) and paces only the
// publishers whose edge broker lives in its shard.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "experiment/config.h"
#include "routing/fabric.h"
#include "routing/subscription.h"
#include "runtime/live_network.h"
#include "sim/faults/timeline.h"

namespace bdps {

struct LiveRunConfig {
  /// Topology, workload, strategy, purge, PD and seed — same vocabulary as
  /// the simulator runner.
  SimConfig sim;
  LiveMode mode = LiveMode::kReactor;
  /// Reactor pool size per instance; 0 = hardware threads.
  std::size_t workers = 0;
  /// Simulated milliseconds per real millisecond.
  double speedup = 500.0;
  TimeMs wheel_tick_ms = 0.25;
  /// Cap on published messages (0 = the full generated workload) — benches
  /// bound wall time with it.
  std::size_t message_limit = 0;
  /// Socket-mode shard count: >= 2 partitions the brokers with
  /// ShardPlan::greedy_edge_cut and runs one LiveNetwork per shard wired
  /// over loopback TCP; <= 1 runs a single instance.  Ignored by kReactor.
  std::size_t shards = 0;
  /// Trunk redial backoff (socket mode).
  double reconnect_initial_ms = 5.0;
  double reconnect_max_ms = 250.0;
  /// Socket-mode trunk addressing: IPv4 literal each shard's listener
  /// binds ("" = loopback, the in-process-cluster default) and the host
  /// dialed per peer shard (indexed by shard id; missing/empty = loopback).
  /// A multi-machine brokerd cluster sets bind_host="0.0.0.0" and lists
  /// every shard's address in peer_hosts.
  std::string bind_host;
  std::vector<std::string> peer_hosts;
};

struct LiveRunResult {
  std::size_t published = 0;
  std::size_t receptions = 0;
  std::size_t deliveries = 0;
  std::size_t valid_deliveries = 0;
  std::size_t purged = 0;
  /// Copies destroyed by faults (crash wipes, severed trunks at stop).
  std::size_t lost = 0;
  double earning = 0.0;
  /// Directed subscribed links served (summed over shards).
  std::size_t links = 0;
  /// Reactor pool size (summed over shards).
  std::size_t workers = 0;
  /// Real milliseconds from start() until drained.
  double wall_ms = 0.0;
  /// Publication copies that crossed a trunk (0 unless socket mode).
  std::uint64_t trunk_forwards = 0;
  /// Trunk drops healed by the reconnect schedule.
  std::uint64_t trunk_reconnects = 0;
  /// Every delivery record (all shards) — the equality gates compare these
  /// as (subscriber, message) multisets across modes.
  std::vector<LiveDelivery> delivery_log;
};

/// Builds the config's topology and workload, runs the live network (or
/// in-process socket cluster) until every published copy is delivered,
/// purged or lost, and reports merged totals.
LiveRunResult run_live(const LiveRunConfig& config);

// ---- Cluster building blocks (shared with tools/brokerd) ----

/// The deterministic world every participant rebuilds from the same
/// config: identical streams split in run_simulation's order, so a
/// (seed, config) pair names the same topology, subscriptions, message
/// schedule and fault timeline everywhere.
struct LiveWorld {
  Topology topology;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy;
  /// Publication schedule, nondecreasing publish time, ids dense 0..n-1
  /// in that order.
  std::vector<std::shared_ptr<const Message>> messages;
  /// Compiled fault batches (nullptr when the plan is empty).
  std::shared_ptr<const CompiledFaults> faults;
};

LiveWorld build_live_world(const LiveRunConfig& config);

/// Shard id per broker for a socket cluster: ShardPlan::greedy_edge_cut
/// over the built graph — deterministic, so every process computes the
/// same layout independently.
std::vector<std::uint32_t> live_broker_shards(const Graph& graph,
                                              std::size_t shards);

/// LiveOptions for shard `shard` of a `shard_count`-way socket cluster
/// (pass shard_count <= 1 for the single-instance modes).
LiveOptions live_options_for(const LiveRunConfig& config, int shard,
                             int shard_count,
                             std::vector<std::uint32_t> broker_shard);

/// Paces the world's publish schedule and fault batches on the scaled
/// clock for every instance in `nets` (each publish goes to the instance
/// serving the publisher's edge broker; fault transitions go to all —
/// unserved halves are ignored).  Batches apply in the compiler's
/// canonical order: brokers down, edges down, brokers up, edges up.
/// Returns the number of messages this call published.
std::size_t drive_live_schedule(const LiveWorld& world,
                                const std::vector<LiveNetwork*>& nets);

/// Cluster quiescence barrier: blocks until the *sum* of outstanding
/// copies across `nets` reads zero on two polls in a row.  The
/// ownership-transfer accounting (net/endpoint.h) guarantees the sum
/// never transiently hits zero while a copy is in flight, so the repeat
/// poll only guards against reading the counters mid-update.
void drain_live_cluster(const std::vector<LiveNetwork*>& nets);

// ---- Config serialization (the brokerd control plane's kConfig body) ----

/// Newline key=value text; doubles are rendered as C hexfloats so
/// parse_live_config(format_live_config(c)) rebuilds the identical world
/// bit-for-bit.  A non-empty fault plan follows a "%%faults" marker line
/// in format_fault_plan's directive syntax.
std::string format_live_config(const LiveRunConfig& config);
LiveRunConfig parse_live_config(const std::string& text);

/// Inverse of topology_name (throws std::invalid_argument on unknown).
TopologyKind parse_topology(const std::string& name);

/// One deadline-free, price-1, match-everything subscriber per subscriber
/// home — the flood workload of the link-scaling bench and ceiling probe
/// (every subscribed link carries every message, and a slow runtime pays
/// in wall time, never in purges).
std::vector<Subscription> flood_subscriptions(const Topology& topology);

}  // namespace bdps
