// Live-runtime experiment wiring: SimConfig-shaped runs through
// LiveNetwork.
//
// run_simulation (experiment/runner.h) proves the scheduling math in
// virtual time; run_live replays the same topology + workload description
// through the threaded runtime on the scaled wall clock — the harness the
// live demo, the link-scaling bench (bench/micro_live_runtime) and the
// ceiling probe (tools/live_scaling) all share.  Messages are paced to
// their generated publish instants, so the live run honours the workload's
// arrival process instead of front-loading a burst.
//
// Knobs the simulator does not have: `mode` picks the reactor worker pool
// or the legacy thread-per-link oracle, `workers` sizes the pool
// (0 = hardware threads), `speedup` maps simulated to real milliseconds.
// A SimConfig fault plan (sim/faults/) is honoured: its compiled batches
// are replayed on the scaled clock through LiveNetwork::set_edge_state —
// down links hold their queues (the reactor also cancels and requeues the
// in-flight copy) until the recovery batch re-arms them; broker windows
// arrive pre-folded into incident links.  Features that need a
// believed-vs-true split (belief noise, online estimation, legacy link
// failures, multipath dedup, routing repair) are simulator-only and
// ignored here.
#pragma once

#include "experiment/config.h"
#include "routing/subscription.h"
#include "runtime/live_network.h"

namespace bdps {

struct LiveRunConfig {
  /// Topology, workload, strategy, purge, PD and seed — same vocabulary as
  /// the simulator runner.
  SimConfig sim;
  LiveMode mode = LiveMode::kReactor;
  /// Reactor pool size; 0 = hardware threads.  Ignored by kThreadPerLink.
  std::size_t workers = 0;
  /// Simulated milliseconds per real millisecond.
  double speedup = 500.0;
  TimeMs wheel_tick_ms = 0.25;
  /// Cap on published messages (0 = the full generated workload) — benches
  /// bound wall time with it.
  std::size_t message_limit = 0;
};

struct LiveRunResult {
  std::size_t published = 0;
  std::size_t receptions = 0;
  std::size_t deliveries = 0;
  std::size_t valid_deliveries = 0;
  std::size_t purged = 0;
  double earning = 0.0;
  /// Directed subscribed links the runtime served.
  std::size_t links = 0;
  /// Reactor pool size used (0 in thread-per-link mode).
  std::size_t workers = 0;
  /// Real milliseconds from start() until drained.
  double wall_ms = 0.0;
};

/// Builds the config's topology and workload, runs the live network until
/// every published copy is delivered or purged, and reports totals.
LiveRunResult run_live(const LiveRunConfig& config);

/// One deadline-free, price-1, match-everything subscriber per subscriber
/// home — the flood workload of the link-scaling bench and ceiling probe
/// (every subscribed link carries every message, and a slow runtime pays
/// in wall time, never in purges).
std::vector<Subscription> flood_subscriptions(const Topology& topology);

}  // namespace bdps
