#include "experiment/live.h"

#include <chrono>

#include "routing/fabric.h"
#include "workload/generator.h"

namespace bdps {

std::vector<Subscription> flood_subscriptions(const Topology& topology) {
  std::vector<Subscription> subs;
  subs.reserve(topology.subscriber_count());
  for (std::size_t s = 0; s < topology.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topology.subscriber_homes[s];
    sub.allowed_delay = kNoDeadline;
    sub.price = 1.0;
    subs.push_back(std::move(sub));
  }
  return subs;
}

LiveRunResult run_live(const LiveRunConfig& config) {
  // Same stream discipline as run_simulation, so a (seed, config) pair
  // names the same topology and workload in both harnesses.
  Rng root(config.sim.seed);
  Rng topology_rng = root.split();
  Rng workload_rng = root.split();

  const Topology topology = build_topology(topology_rng, config.sim);
  std::vector<Subscription> subscriptions =
      generate_subscriptions(workload_rng, config.sim.workload, topology);
  const RoutingFabric fabric(topology, std::move(subscriptions));
  const auto strategy =
      make_strategy(config.sim.strategy, config.sim.ebpc_weight);

  LiveOptions options;
  options.processing_delay = config.sim.processing_delay;
  options.purge = config.sim.purge;
  options.speedup = config.speedup;
  options.seed = config.sim.seed;
  options.mode = config.mode;
  options.workers = config.workers;
  options.wheel_tick_ms = config.wheel_tick_ms;

  std::vector<std::shared_ptr<const Message>> messages = generate_messages(
      workload_rng, config.sim.workload, topology.publisher_count());
  if (config.message_limit != 0 && messages.size() > config.message_limit) {
    messages.resize(config.message_limit);
  }

  LiveNetwork net(&topology, &fabric, strategy.get(), options);
  const auto wall_start = std::chrono::steady_clock::now();
  net.start();

  // Pace publishes to their generated instants on the scaled clock
  // (generate_messages returns them in nondecreasing publish-time order).
  for (const auto& message : messages) {
    const TimeMs ahead = message->publish_time() - net.clock().now();
    if (ahead > 0.0) net.clock().sleep_for(ahead);
    net.publish(message->publisher(), *message);
  }

  net.drain();
  const auto wall_end = std::chrono::steady_clock::now();
  net.stop();

  LiveRunResult result;
  result.published = messages.size();
  result.receptions = net.stats().receptions();
  result.deliveries = net.stats().deliveries().size();
  result.valid_deliveries = net.stats().valid_deliveries();
  result.purged = net.stats().purged();
  result.earning = net.stats().earning();
  result.links = net.link_count();
  result.workers = net.worker_count();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  return result;
}

}  // namespace bdps
