#include "experiment/live.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/config.h"
#include "sim/parallel/shard_plan.h"
#include "workload/generator.h"

namespace bdps {

namespace {

/// C hexfloat ("%a") — every double round-trips bit-for-bit through
/// strtod, which KeyValueConfig::get_double uses.
std::string hexf(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string mode_name(LiveMode mode) {
  return mode == LiveMode::kSocket ? "socket" : "reactor";
}

LiveMode parse_mode(const std::string& name) {
  if (name == "reactor") return LiveMode::kReactor;
  if (name == "socket") return LiveMode::kSocket;
  throw std::invalid_argument("unknown live mode: " + name);
}

LiveRunResult collect_results(const std::vector<LiveNetwork*>& nets,
                              std::size_t published, double wall_ms) {
  LiveRunResult result;
  result.published = published;
  result.wall_ms = wall_ms;
  for (const LiveNetwork* net : nets) {
    const LiveStats& stats = net->stats();
    result.receptions += stats.receptions();
    result.deliveries += stats.deliveries().size();
    result.valid_deliveries += stats.valid_deliveries();
    result.purged += stats.purged();
    result.lost += stats.lost();
    result.earning += stats.earning();
    result.links += net->link_count();
    result.workers += net->worker_count();
    result.trunk_forwards += net->trunk_forwards_sent();
    result.trunk_reconnects += net->trunk_reconnects();
    const std::vector<LiveDelivery> local = stats.deliveries();
    result.delivery_log.insert(result.delivery_log.end(), local.begin(),
                               local.end());
  }
  return result;
}

}  // namespace

std::vector<Subscription> flood_subscriptions(const Topology& topology) {
  std::vector<Subscription> subs;
  subs.reserve(topology.subscriber_count());
  for (std::size_t s = 0; s < topology.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topology.subscriber_homes[s];
    sub.allowed_delay = kNoDeadline;
    sub.price = 1.0;
    subs.push_back(std::move(sub));
  }
  return subs;
}

LiveWorld build_live_world(const LiveRunConfig& config) {
  // Same stream discipline as run_simulation, so a (seed, config) pair
  // names the same topology and workload in both harnesses — and the same
  // world in every daemon of a cluster.
  Rng root(config.sim.seed);
  Rng topology_rng = root.split();
  Rng workload_rng = root.split();

  LiveWorld world;
  world.topology = build_topology(topology_rng, config.sim);
  std::vector<Subscription> subscriptions =
      generate_subscriptions(workload_rng, config.sim.workload, world.topology);
  FabricOptions fabric_options;
  fabric_options.engine = config.sim.sharded_matching ? MatchEngine::kSharded
                                                      : MatchEngine::kReference;
  fabric_options.covering = config.sim.match_covering;
  world.fabric = std::make_unique<RoutingFabric>(
      world.topology, std::move(subscriptions), fabric_options);
  world.strategy = make_strategy(config.sim.strategy, config.sim.ebpc_weight);

  world.messages = generate_messages(workload_rng, config.sim.workload,
                                     world.topology.publisher_count());
  if (config.message_limit != 0 &&
      world.messages.size() > config.message_limit) {
    world.messages.resize(config.message_limit);
  }

  // Storm schedule: the simulator's fault vocabulary compiled into
  // per-instant batches.  Same split discipline as experiment/runner: the
  // fault stream is drawn only when a plan exists, so fault-free runs are
  // byte-identical to before the knob existed.
  if (!config.sim.faults.empty()) {
    Rng fault_rng = root.split();
    const FaultPlan normalized =
        materialize_faults(config.sim.faults, world.topology.graph, fault_rng);
    world.faults = std::make_shared<const CompiledFaults>(
        CompiledFaults::compile(normalized, world.topology.graph));
  }
  return world;
}

std::vector<std::uint32_t> live_broker_shards(const Graph& graph,
                                              std::size_t shards) {
  const ShardPlan plan = ShardPlan::greedy_edge_cut(graph, shards);
  std::vector<std::uint32_t> out(graph.broker_count());
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = plan.shard_of(static_cast<BrokerId>(b));
  }
  return out;
}

LiveOptions live_options_for(const LiveRunConfig& config, int shard,
                             int shard_count,
                             std::vector<std::uint32_t> broker_shard) {
  LiveOptions options;
  options.processing_delay = config.sim.processing_delay;
  options.purge = config.sim.purge;
  options.speedup = config.speedup;
  options.seed = config.sim.seed;
  options.mode = config.mode;
  options.workers = config.workers;
  options.wheel_tick_ms = config.wheel_tick_ms;
  options.net.shard = shard;
  options.net.shard_count = shard_count < 1 ? 1 : shard_count;
  options.net.broker_shard = std::move(broker_shard);
  options.net.reconnect_initial_ms = config.reconnect_initial_ms;
  options.net.reconnect_max_ms = config.reconnect_max_ms;
  options.net.bind_host = config.bind_host;
  options.net.peer_hosts = config.peer_hosts;
  return options;
}

std::size_t drive_live_schedule(const LiveWorld& world,
                                const std::vector<LiveNetwork*>& nets) {
  const LiveClock& clock = nets.front()->clock();

  // Clock-paced fault transitions, interleaved with the publish pacing
  // below: batches are applied once the scaled clock passes their instant,
  // in the compiler's canonical order.  Crashes go through
  // set_broker_state (queue wipes); the crashed broker's links are already
  // folded into the batch's edge halves by CompiledFaults::compile.  Every
  // instance sees every transition — unserved halves are no-ops there.
  std::size_t batch_cursor = 0;
  const auto apply_batch = [&](const FaultBatch& batch) {
    for (const BrokerId broker : batch.brokers_down) {
      for (LiveNetwork* net : nets) net->set_broker_state(broker, false);
    }
    for (const EdgeId edge : batch.edges_down) {
      for (LiveNetwork* net : nets) net->set_edge_state(edge, false);
    }
    for (const BrokerId broker : batch.brokers_up) {
      for (LiveNetwork* net : nets) net->set_broker_state(broker, true);
    }
    for (const EdgeId edge : batch.edges_up) {
      for (LiveNetwork* net : nets) net->set_edge_state(edge, true);
    }
  };
  const auto apply_faults_until = [&](TimeMs upto) {
    if (!world.faults) return;
    const auto& batches = world.faults->batches();
    while (batch_cursor < batches.size() && batches[batch_cursor].at <= upto) {
      const FaultBatch& batch = batches[batch_cursor++];
      const TimeMs ahead = batch.at - clock.now();
      if (ahead > 0.0) clock.sleep_for(ahead);
      apply_batch(batch);
    }
  };

  // Pace publishes to their generated instants (generate_messages returns
  // them in nondecreasing publish-time order) under their *generated* ids,
  // so delivery records align across modes, shards and processes.  In a
  // cluster each participant drives the same loop and publishes only the
  // messages whose edge broker it serves.
  std::size_t published = 0;
  for (const auto& message : world.messages) {
    apply_faults_until(message->publish_time());
    const TimeMs ahead = message->publish_time() - clock.now();
    if (ahead > 0.0) clock.sleep_for(ahead);
    const BrokerId home = world.topology.publisher_edges.at(
        static_cast<std::size_t>(message->publisher()));
    for (LiveNetwork* net : nets) {
      if (!net->serves(home)) continue;
      net->publish(message->publisher(), *message, message->id());
      ++published;
      break;
    }
  }
  // Remaining transitions (recoveries, late storms) must still land —
  // held copies would otherwise block the drain forever.
  apply_faults_until(kNoDeadline);
  return published;
}

void drain_live_cluster(const std::vector<LiveNetwork*>& nets) {
  int stable = 0;
  while (stable < 2) {
    std::size_t sum = 0;
    for (const LiveNetwork* net : nets) sum += net->outstanding();
    stable = sum == 0 ? stable + 1 : 0;
    if (stable < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

LiveRunResult run_live(const LiveRunConfig& config) {
  const LiveWorld world = build_live_world(config);

  std::size_t shard_count = 1;
  if (config.mode == LiveMode::kSocket && config.shards > 1) {
    // greedy_edge_cut needs a non-empty shard each.
    shard_count = std::min(config.shards, world.topology.graph.broker_count());
  }

  std::vector<std::unique_ptr<LiveNetwork>> instances;
  instances.reserve(shard_count);
  if (shard_count > 1) {
    const std::vector<std::uint32_t> broker_shard =
        live_broker_shards(world.topology.graph, shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      instances.push_back(std::make_unique<LiveNetwork>(
          &world.topology, world.fabric.get(), world.strategy.get(),
          live_options_for(config, static_cast<int>(s),
                           static_cast<int>(shard_count), broker_shard)));
    }
    // In-process port exchange (brokerd does the same dance over the
    // control plane), then full-mesh trunk dialing.
    std::vector<std::uint16_t> ports;
    ports.reserve(shard_count);
    for (const auto& net : instances) ports.push_back(net->trunk_port());
    for (const auto& net : instances) net->connect_trunks(ports);
  } else {
    instances.push_back(std::make_unique<LiveNetwork>(
        &world.topology, world.fabric.get(), world.strategy.get(),
        live_options_for(config, 0, 1, {})));
  }
  std::vector<LiveNetwork*> nets;
  nets.reserve(instances.size());
  for (const auto& net : instances) nets.push_back(net.get());

  const auto wall_start = std::chrono::steady_clock::now();
  for (LiveNetwork* net : nets) net->start();
  for (LiveNetwork* net : nets) {
    if (!net->wait_trunks(std::chrono::milliseconds(10000))) {
      throw std::runtime_error("live cluster: trunks failed to connect");
    }
  }

  const std::size_t published = drive_live_schedule(world, nets);
  drain_live_cluster(nets);
  const auto wall_end = std::chrono::steady_clock::now();
  for (LiveNetwork* net : nets) net->stop();

  return collect_results(
      nets, published,
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count());
}

TopologyKind parse_topology(const std::string& name) {
  for (const TopologyKind kind :
       {TopologyKind::kPaper, TopologyKind::kAcyclic, TopologyKind::kRandomMesh,
        TopologyKind::kDumbbell, TopologyKind::kRing, TopologyKind::kGrid,
        TopologyKind::kScaleFree}) {
    if (topology_name(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown topology: " + name);
}

std::string format_live_config(const LiveRunConfig& c) {
  std::ostringstream out;
  out << "# bdps live config v1\n";
  out << "seed=" << c.sim.seed << '\n';
  out << "strategy=" << strategy_name(c.sim.strategy) << '\n';
  out << "ebpc_weight=" << hexf(c.sim.ebpc_weight) << '\n';
  out << "purge_epsilon=" << hexf(c.sim.purge.epsilon) << '\n';
  out << "purge_drop_expired=" << (c.sim.purge.drop_expired ? 1 : 0) << '\n';
  out << "processing_delay=" << hexf(c.sim.processing_delay) << '\n';
  out << "sharded_matching=" << (c.sim.sharded_matching ? 1 : 0) << '\n';
  out << "match_covering=" << (c.sim.match_covering ? 1 : 0) << '\n';

  const WorkloadConfig& w = c.sim.workload;
  out << "scenario=" << scenario_name(w.scenario) << '\n';
  out << "rate_per_min=" << hexf(w.publishing_rate_per_min) << '\n';
  out << "poisson=" << (w.poisson_arrivals ? 1 : 0) << '\n';
  out << "duration=" << hexf(w.duration) << '\n';
  out << "size_kb=" << hexf(w.message_size_kb) << '\n';
  out << "attribute_count=" << w.attribute_count << '\n';
  out << "attribute_lo=" << hexf(w.attribute_lo) << '\n';
  out << "attribute_hi=" << hexf(w.attribute_hi) << '\n';
  out << "psd_delay_lo=" << hexf(w.psd_delay_lo) << '\n';
  out << "psd_delay_hi=" << hexf(w.psd_delay_hi) << '\n';
  out << "ssd_tiers=";  // Flat (delay, price) pairs.
  for (std::size_t i = 0; i < w.ssd_tiers.size(); ++i) {
    if (i > 0) out << ',';
    out << hexf(w.ssd_tiers[i].allowed_delay) << ','
        << hexf(w.ssd_tiers[i].price);
  }
  out << '\n';
  out << "churn=" << hexf(w.churn_fraction) << '\n';
  out << "bursts=";  // Flat (at, duration, multiplier) triples.
  for (std::size_t i = 0; i < w.bursts.size(); ++i) {
    if (i > 0) out << ',';
    out << hexf(w.bursts[i].at) << ',' << hexf(w.bursts[i].duration) << ','
        << hexf(w.bursts[i].rate_multiplier);
  }
  out << '\n';

  out << "topology=" << topology_name(c.sim.topology) << '\n';
  out << "broker_count=" << c.sim.broker_count << '\n';
  out << "publisher_count=" << c.sim.publisher_count << '\n';
  out << "subscriber_count=" << c.sim.subscriber_count << '\n';
  out << "extra_edges=" << c.sim.extra_edges << '\n';
  out << "grid_rows=" << c.sim.grid_rows << '\n';
  out << "grid_cols=" << c.sim.grid_cols << '\n';
  out << "grid_torus=" << (c.sim.grid_torus ? 1 : 0) << '\n';
  out << "scale_free_edges=" << c.sim.scale_free_edges_per_node << '\n';
  out << "link_lo=" << hexf(c.sim.link_mean_lo_ms_per_kb) << '\n';
  out << "link_hi=" << hexf(c.sim.link_mean_hi_ms_per_kb) << '\n';
  out << "link_stddev=" << hexf(c.sim.link_stddev_ms_per_kb) << '\n';

  const PaperTopologyConfig& p = c.sim.paper_topology;
  out << "paper_layer1=" << p.layer1 << '\n';
  out << "paper_layer2=" << p.layer2 << '\n';
  out << "paper_layer3=" << p.layer3 << '\n';
  out << "paper_layer4=" << p.layer4 << '\n';
  out << "paper_subscribers=" << p.subscribers_per_edge_broker << '\n';
  out << "paper_uplinks3=" << p.uplinks_per_layer3 << '\n';
  out << "paper_uplinks4=" << p.uplinks_per_layer4 << '\n';
  out << "paper_link_lo=" << hexf(p.link_mean_lo_ms_per_kb) << '\n';
  out << "paper_link_hi=" << hexf(p.link_mean_hi_ms_per_kb) << '\n';
  out << "paper_link_stddev=" << hexf(p.link_stddev_ms_per_kb) << '\n';

  out << "mode=" << mode_name(c.mode) << '\n';
  out << "workers=" << c.workers << '\n';
  out << "speedup=" << hexf(c.speedup) << '\n';
  out << "wheel_tick_ms=" << hexf(c.wheel_tick_ms) << '\n';
  out << "message_limit=" << c.message_limit << '\n';
  out << "shards=" << c.shards << '\n';
  out << "reconnect_initial_ms=" << hexf(c.reconnect_initial_ms) << '\n';
  out << "reconnect_max_ms=" << hexf(c.reconnect_max_ms) << '\n';
  out << "net_bind_host=" << c.bind_host << '\n';
  out << "net_peer_hosts=";  // Comma list indexed by shard id.
  for (std::size_t i = 0; i < c.peer_hosts.size(); ++i) {
    if (i > 0) out << ',';
    out << c.peer_hosts[i];
  }
  out << '\n';

  if (!c.sim.faults.empty()) {
    out << "%%faults\n" << format_fault_plan(c.sim.faults);
  }
  return out.str();
}

LiveRunConfig parse_live_config(const std::string& text) {
  // Split off the fault-plan section (its directive syntax is not
  // key=value).  The marker must start a line.
  std::string head = text;
  std::string faults_text;
  const std::string marker = "%%faults";
  std::size_t at = text.rfind("\n" + marker);
  if (at != std::string::npos || text.rfind(marker, 0) == 0) {
    const std::size_t marker_start = at == std::string::npos ? 0 : at + 1;
    head = text.substr(0, marker_start);
    faults_text = text.substr(marker_start + marker.size());
  }

  const KeyValueConfig kv = KeyValueConfig::from_text(head);
  LiveRunConfig c;
  c.sim.seed = std::strtoull(
      kv.get_string("seed", std::to_string(c.sim.seed)).c_str(), nullptr, 10);
  c.sim.strategy =
      parse_strategy(kv.get_string("strategy", strategy_name(c.sim.strategy)));
  c.sim.ebpc_weight = kv.get_double("ebpc_weight", c.sim.ebpc_weight);
  c.sim.purge.epsilon = kv.get_double("purge_epsilon", c.sim.purge.epsilon);
  c.sim.purge.drop_expired =
      kv.get_bool("purge_drop_expired", c.sim.purge.drop_expired);
  c.sim.processing_delay =
      kv.get_double("processing_delay", c.sim.processing_delay);
  c.sim.sharded_matching =
      kv.get_bool("sharded_matching", c.sim.sharded_matching);
  c.sim.match_covering = kv.get_bool("match_covering", c.sim.match_covering);

  WorkloadConfig& w = c.sim.workload;
  w.scenario = parse_scenario(kv.get_string("scenario", scenario_name(w.scenario)));
  w.publishing_rate_per_min =
      kv.get_double("rate_per_min", w.publishing_rate_per_min);
  w.poisson_arrivals = kv.get_bool("poisson", w.poisson_arrivals);
  w.duration = kv.get_double("duration", w.duration);
  w.message_size_kb = kv.get_double("size_kb", w.message_size_kb);
  w.attribute_count = kv.get_int("attribute_count", w.attribute_count);
  w.attribute_lo = kv.get_double("attribute_lo", w.attribute_lo);
  w.attribute_hi = kv.get_double("attribute_hi", w.attribute_hi);
  w.psd_delay_lo = kv.get_double("psd_delay_lo", w.psd_delay_lo);
  w.psd_delay_hi = kv.get_double("psd_delay_hi", w.psd_delay_hi);
  if (kv.has("ssd_tiers")) {
    const std::vector<double> flat = kv.get_double_list("ssd_tiers", {});
    if (flat.size() % 2 != 0) {
      throw std::invalid_argument("live config: odd ssd_tiers list");
    }
    w.ssd_tiers.clear();
    for (std::size_t i = 0; i + 1 < flat.size(); i += 2) {
      w.ssd_tiers.push_back(DelayTier{flat[i], flat[i + 1]});
    }
  }
  w.churn_fraction = kv.get_double("churn", w.churn_fraction);
  if (kv.has("bursts")) {
    const std::vector<double> flat = kv.get_double_list("bursts", {});
    if (flat.size() % 3 != 0) {
      throw std::invalid_argument("live config: bursts not triples");
    }
    w.bursts.clear();
    for (std::size_t i = 0; i + 2 < flat.size(); i += 3) {
      w.bursts.push_back(
          WorkloadConfig::PublishBurst{flat[i], flat[i + 1], flat[i + 2]});
    }
  }

  c.sim.topology =
      parse_topology(kv.get_string("topology", topology_name(c.sim.topology)));
  const auto get_size = [&kv](const char* key, std::size_t fallback) {
    return static_cast<std::size_t>(
        kv.get_int(key, static_cast<int>(fallback)));
  };
  c.sim.broker_count = get_size("broker_count", c.sim.broker_count);
  c.sim.publisher_count = get_size("publisher_count", c.sim.publisher_count);
  c.sim.subscriber_count = get_size("subscriber_count", c.sim.subscriber_count);
  c.sim.extra_edges = get_size("extra_edges", c.sim.extra_edges);
  c.sim.grid_rows = get_size("grid_rows", c.sim.grid_rows);
  c.sim.grid_cols = get_size("grid_cols", c.sim.grid_cols);
  c.sim.grid_torus = kv.get_bool("grid_torus", c.sim.grid_torus);
  c.sim.scale_free_edges_per_node =
      get_size("scale_free_edges", c.sim.scale_free_edges_per_node);
  c.sim.link_mean_lo_ms_per_kb =
      kv.get_double("link_lo", c.sim.link_mean_lo_ms_per_kb);
  c.sim.link_mean_hi_ms_per_kb =
      kv.get_double("link_hi", c.sim.link_mean_hi_ms_per_kb);
  c.sim.link_stddev_ms_per_kb =
      kv.get_double("link_stddev", c.sim.link_stddev_ms_per_kb);

  PaperTopologyConfig& p = c.sim.paper_topology;
  p.layer1 = get_size("paper_layer1", p.layer1);
  p.layer2 = get_size("paper_layer2", p.layer2);
  p.layer3 = get_size("paper_layer3", p.layer3);
  p.layer4 = get_size("paper_layer4", p.layer4);
  p.subscribers_per_edge_broker =
      get_size("paper_subscribers", p.subscribers_per_edge_broker);
  p.uplinks_per_layer3 = get_size("paper_uplinks3", p.uplinks_per_layer3);
  p.uplinks_per_layer4 = get_size("paper_uplinks4", p.uplinks_per_layer4);
  p.link_mean_lo_ms_per_kb =
      kv.get_double("paper_link_lo", p.link_mean_lo_ms_per_kb);
  p.link_mean_hi_ms_per_kb =
      kv.get_double("paper_link_hi", p.link_mean_hi_ms_per_kb);
  p.link_stddev_ms_per_kb =
      kv.get_double("paper_link_stddev", p.link_stddev_ms_per_kb);

  c.mode = parse_mode(kv.get_string("mode", mode_name(c.mode)));
  c.workers = get_size("workers", c.workers);
  c.speedup = kv.get_double("speedup", c.speedup);
  c.wheel_tick_ms = kv.get_double("wheel_tick_ms", c.wheel_tick_ms);
  c.message_limit = get_size("message_limit", c.message_limit);
  c.shards = get_size("shards", c.shards);
  c.reconnect_initial_ms =
      kv.get_double("reconnect_initial_ms", c.reconnect_initial_ms);
  c.reconnect_max_ms = kv.get_double("reconnect_max_ms", c.reconnect_max_ms);
  c.bind_host = kv.get_string("net_bind_host", c.bind_host);
  if (kv.has("net_peer_hosts")) {
    // Comma list indexed by shard id; an empty value means no overrides
    // (every trunk dials loopback).  KeyValueConfig has no string-list
    // getter, so split here — hosts are IPv4 literals, commas never nest.
    c.peer_hosts.clear();
    const std::string flat = kv.get_string("net_peer_hosts", "");
    if (!flat.empty()) {
      std::size_t start = 0;
      for (;;) {
        const std::size_t comma = flat.find(',', start);
        c.peer_hosts.push_back(flat.substr(
            start, comma == std::string::npos ? comma : comma - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }

  if (!faults_text.empty()) {
    c.sim.faults = parse_fault_plan(faults_text);
  }
  return c;
}

}  // namespace bdps
