#include "experiment/live.h"

#include <chrono>

#include "routing/fabric.h"
#include "sim/faults/timeline.h"
#include "workload/generator.h"

namespace bdps {

std::vector<Subscription> flood_subscriptions(const Topology& topology) {
  std::vector<Subscription> subs;
  subs.reserve(topology.subscriber_count());
  for (std::size_t s = 0; s < topology.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topology.subscriber_homes[s];
    sub.allowed_delay = kNoDeadline;
    sub.price = 1.0;
    subs.push_back(std::move(sub));
  }
  return subs;
}

LiveRunResult run_live(const LiveRunConfig& config) {
  // Same stream discipline as run_simulation, so a (seed, config) pair
  // names the same topology and workload in both harnesses.
  Rng root(config.sim.seed);
  Rng topology_rng = root.split();
  Rng workload_rng = root.split();

  const Topology topology = build_topology(topology_rng, config.sim);
  std::vector<Subscription> subscriptions =
      generate_subscriptions(workload_rng, config.sim.workload, topology);
  const RoutingFabric fabric(topology, std::move(subscriptions));
  const auto strategy =
      make_strategy(config.sim.strategy, config.sim.ebpc_weight);

  LiveOptions options;
  options.processing_delay = config.sim.processing_delay;
  options.purge = config.sim.purge;
  options.speedup = config.speedup;
  options.seed = config.sim.seed;
  options.mode = config.mode;
  options.workers = config.workers;
  options.wheel_tick_ms = config.wheel_tick_ms;

  std::vector<std::shared_ptr<const Message>> messages = generate_messages(
      workload_rng, config.sim.workload, topology.publisher_count());
  if (config.message_limit != 0 && messages.size() > config.message_limit) {
    messages.resize(config.message_limit);
  }

  // Storm schedule: the same fault vocabulary as the simulator, compiled
  // into per-instant batches (broker windows already folded into incident
  // links — the live runtime models broker churn as its links going dark).
  // Same split discipline as experiment/runner: the fault stream is drawn
  // only when a plan exists.
  std::shared_ptr<const CompiledFaults> faults;
  if (!config.sim.faults.empty()) {
    Rng fault_rng = root.split();
    const FaultPlan normalized =
        materialize_faults(config.sim.faults, topology.graph, fault_rng);
    faults = std::make_shared<const CompiledFaults>(
        CompiledFaults::compile(normalized, topology.graph));
  }

  LiveNetwork net(&topology, &fabric, strategy.get(), options);
  const auto wall_start = std::chrono::steady_clock::now();
  net.start();

  // Clock-paced fault transitions, interleaved with the publish pacing
  // below: batches are applied once the scaled clock passes their instant.
  std::size_t batch_cursor = 0;
  const auto apply_faults_until = [&](TimeMs upto) {
    if (!faults) return;
    const auto& batches = faults->batches();
    while (batch_cursor < batches.size() &&
           batches[batch_cursor].at <= upto) {
      const FaultBatch& batch = batches[batch_cursor++];
      const TimeMs ahead = batch.at - net.clock().now();
      if (ahead > 0.0) net.clock().sleep_for(ahead);
      for (const EdgeId edge : batch.edges_down) {
        net.set_edge_state(edge, /*up=*/false);
      }
      for (const EdgeId edge : batch.edges_up) {
        net.set_edge_state(edge, /*up=*/true);
      }
    }
  };

  // Pace publishes to their generated instants on the scaled clock
  // (generate_messages returns them in nondecreasing publish-time order).
  for (const auto& message : messages) {
    apply_faults_until(message->publish_time());
    const TimeMs ahead = message->publish_time() - net.clock().now();
    if (ahead > 0.0) net.clock().sleep_for(ahead);
    net.publish(message->publisher(), *message);
  }
  // Remaining transitions (recoveries, late storms) must still land —
  // held copies would otherwise block drain() forever.
  apply_faults_until(kNoDeadline);

  net.drain();
  const auto wall_end = std::chrono::steady_clock::now();
  net.stop();

  LiveRunResult result;
  result.published = messages.size();
  result.receptions = net.stats().receptions();
  result.deliveries = net.stats().deliveries().size();
  result.valid_deliveries = net.stats().valid_deliveries();
  result.purged = net.stats().purged();
  result.earning = net.stats().earning();
  result.links = net.link_count();
  result.workers = net.worker_count();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  return result;
}

}  // namespace bdps
