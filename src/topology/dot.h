// Graphviz DOT export of overlays and routing trees.
//
// `dot -Tpng overlay.dot` renders the broker graph with link parameters on
// the edges, publishers/subscriber counts on the nodes, and (optionally)
// one subscriber's routing tree highlighted — the fastest way to sanity-
// check a topology builder or explain a routing decision.
#pragma once

#include <string>

#include "routing/spt.h"
#include "topology/builders.h"

namespace bdps {

/// Renders the overlay: one node per broker (publishers marked "P",
/// subscriber homes labelled with their subscriber count), one undirected
/// edge per link labelled "mu+/-sigma".
std::string to_dot(const Topology& topology);

/// Same, with the edges of `tree` (the chosen paths toward
/// tree.destination) drawn bold/red.
std::string to_dot(const Topology& topology, const ShortestPathTree& tree);

}  // namespace bdps
