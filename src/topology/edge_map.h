// Dense per-edge state containers.
//
// The hot loops of the system are per-link: every send start, completion,
// failure check and estimator update addresses one directed edge.  EdgeIds
// are dense in [0, edge_count), so per-link state belongs in flat arrays —
// one O(1) indexed load — not in std::maps keyed on (BrokerId, BrokerId)
// pairs paying O(log n) pointer-chasing tree walks.  EdgeMap<T> is that
// array with an EdgeId-typed interface; EdgeFlags is the one-bit-per-edge
// specialisation (dead links, membership sets) with a popcount-free
// `none()` fast path for the common no-failure run.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "topology/graph.h"

namespace bdps {

/// Flat T-per-directed-edge array indexed by EdgeId.
template <typename T>
class EdgeMap {
 public:
  EdgeMap() = default;
  explicit EdgeMap(std::size_t edge_count, const T& initial = T())
      : values_(edge_count, initial) {}
  explicit EdgeMap(const Graph& graph, const T& initial = T())
      : values_(graph.edge_count(), initial) {}

  /// (Re)sizes to one slot per edge, resetting every slot to `initial`.
  void assign(std::size_t edge_count, const T& initial = T()) {
    values_.assign(edge_count, initial);
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  T& operator[](EdgeId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < values_.size());
    return values_[static_cast<std::size_t>(id)];
  }
  const T& operator[](EdgeId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < values_.size());
    return values_[static_cast<std::size_t>(id)];
  }

 private:
  std::vector<T> values_;
};

/// One bit per directed edge, with a set-bit count so `none()` — the guard
/// in front of every dead-link test — is a single integer compare.
class EdgeFlags {
 public:
  EdgeFlags() = default;
  explicit EdgeFlags(std::size_t edge_count) { assign(edge_count); }

  /// (Re)sizes to `edge_count` bits, all clear.
  void assign(std::size_t edge_count) {
    bits_ = edge_count;
    words_.assign((edge_count + 63) / 64, 0);
    set_count_ = 0;
  }

  std::size_t size() const { return bits_; }
  std::size_t count() const { return set_count_; }
  bool none() const { return set_count_ == 0; }
  bool any() const { return set_count_ != 0; }

  bool test(EdgeId id) const {
    assert(id >= 0 && static_cast<std::size_t>(id) < bits_);
    return (words_[static_cast<std::size_t>(id) >> 6] >>
            (static_cast<std::size_t>(id) & 63)) &
           1u;
  }

  void set(EdgeId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < bits_);
    std::uint64_t& word = words_[static_cast<std::size_t>(id) >> 6];
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(id) & 63);
    set_count_ += (word & mask) == 0;
    word |= mask;
  }

  void reset(EdgeId id) {
    assert(id >= 0 && static_cast<std::size_t>(id) < bits_);
    std::uint64_t& word = words_[static_cast<std::size_t>(id) >> 6];
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(id) & 63);
    set_count_ -= (word & mask) != 0;
    word &= ~mask;
  }

  /// Clears every bit without resizing (link recovery wipes, scratch reuse).
  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    set_count_ = 0;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
  std::size_t set_count_ = 0;
};

}  // namespace bdps
