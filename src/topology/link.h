// Stochastic overlay links.
//
// §3.2 of the paper: each overlay link li is a TCP connection whose per-KB
// transmission rate TRi (milliseconds per kilobyte) follows a normal
// distribution N(mu_i, sigma_i^2).  A LinkModel holds those parameters and
// samples the *actual* rate of each individual send; the scheduler sees the
// parameters (or estimates of them) through the routing fabric.
#pragma once

#include "common/random.h"
#include "common/types.h"

namespace bdps {

/// Family the *true* per-send rate is drawn from.  The paper models TR as
/// normal and its schedulers always assume so; the gamma and lognormal
/// shapes (mean/stddev-matched, right-skewed — the paper itself cites
/// shifted-gamma measurements of Internet delays in §3.2) exist to test how
/// the normal assumption holds up when reality is skewed
/// (bench/ablation_distribution).
enum class RateShape { kNormal, kShiftedGamma, kLognormal };

/// Parameters of a link's transmission-rate distribution.
struct LinkParams {
  double mean_ms_per_kb = 0.0;
  double stddev_ms_per_kb = 0.0;
  RateShape shape = RateShape::kNormal;

  double variance() const { return stddev_ms_per_kb * stddev_ms_per_kb; }
};

class LinkModel {
 public:
  LinkModel() = default;
  explicit LinkModel(LinkParams params) : params_(params) {}

  const LinkParams& params() const { return params_; }

  /// Samples the per-KB rate for one send.  Rates are physically positive:
  /// the normal is truncated at a small floor (the paper's parameters make
  /// P(TR <= 0) < 0.7%, so truncation barely distorts the distribution).
  /// All shapes are matched to the same mean and stddev.
  double sample_rate(Rng& rng) const;

  /// Duration of sending `size_kb` kilobytes in one sampled transfer.
  TimeMs sample_send_time(Rng& rng, double size_kb) const {
    return size_kb * sample_rate(rng);
  }

  /// Floor applied when truncating sampled rates.
  static constexpr double kMinRateMsPerKb = 1e-3;

 private:
  LinkParams params_;
};

}  // namespace bdps
