#include "topology/graph.h"

#include <algorithm>
#include <cassert>

namespace bdps {

void Graph::resize(std::size_t broker_count) {
  adjacency_.resize(broker_count);
  sorted_out_.resize(broker_count);
}

EdgeId Graph::add_edge(BrokerId from, BrokerId to, LinkParams params) {
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, LinkModel(params)});
  adjacency_[from].push_back(id);
  // upper_bound keeps parallel edges in insertion order, so edge_id's
  // lower_bound resolves them to the first-added one — find_edge's answer.
  auto& row = sorted_out_[from];
  const auto slot = std::upper_bound(
      row.begin(), row.end(), to,
      [](BrokerId target, const OutRef& ref) { return target < ref.to; });
  row.insert(slot, OutRef{to, id});
  return id;
}

EdgeId Graph::add_bidirectional(BrokerId a, BrokerId b, LinkParams params) {
  const EdgeId forward = add_edge(a, b, params);
  add_edge(b, a, params);
  return forward;
}

EdgeId Graph::edge_id(BrokerId from, BrokerId to) const {
  const auto& row = sorted_out_[from];
  const auto ref = std::lower_bound(
      row.begin(), row.end(), to,
      [](const OutRef& r, BrokerId target) { return r.to < target; });
  const EdgeId id = (ref != row.end() && ref->to == to) ? ref->id : kNoEdge;
  assert(id == find_edge(from, to));
  return id;
}

EdgeId Graph::find_edge(BrokerId from, BrokerId to) const {
  for (const EdgeId id : adjacency_[from]) {
    if (edges_[id].to == to) return id;
  }
  return kNoEdge;
}

bool Graph::validate() const {
  const auto n = static_cast<BrokerId>(broker_count());
  for (const Edge& e : edges_) {
    if (e.from < 0 || e.from >= n) return false;
    if (e.to < 0 || e.to >= n) return false;
    if (e.from == e.to) return false;
    if (e.link.params().mean_ms_per_kb <= 0.0) return false;
    if (e.link.params().stddev_ms_per_kb < 0.0) return false;
  }
  return true;
}

}  // namespace bdps
