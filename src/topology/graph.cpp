#include "topology/graph.h"

namespace bdps {

void Graph::resize(std::size_t broker_count) {
  adjacency_.resize(broker_count);
}

EdgeId Graph::add_edge(BrokerId from, BrokerId to, LinkParams params) {
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, LinkModel(params)});
  adjacency_[from].push_back(id);
  return id;
}

EdgeId Graph::add_bidirectional(BrokerId a, BrokerId b, LinkParams params) {
  const EdgeId forward = add_edge(a, b, params);
  add_edge(b, a, params);
  return forward;
}

EdgeId Graph::find_edge(BrokerId from, BrokerId to) const {
  for (const EdgeId id : adjacency_[from]) {
    if (edges_[id].to == to) return id;
  }
  return kNoEdge;
}

bool Graph::validate() const {
  const auto n = static_cast<BrokerId>(broker_count());
  for (const Edge& e : edges_) {
    if (e.from < 0 || e.from >= n) return false;
    if (e.to < 0 || e.to >= n) return false;
    if (e.from == e.to) return false;
    if (e.link.params().mean_ms_per_kb <= 0.0) return false;
    if (e.link.params().stddev_ms_per_kb < 0.0) return false;
  }
  return true;
}

}  // namespace bdps
