#include "topology/link.h"

#include <cmath>

namespace bdps {

double LinkModel::sample_rate(Rng& rng) const {
  const double mean = params_.mean_ms_per_kb;
  const double stddev = params_.stddev_ms_per_kb;
  switch (params_.shape) {
    case RateShape::kNormal:
      return rng.truncated_normal(mean, stddev, kMinRateMsPerKb);
    case RateShape::kShiftedGamma: {
      // Shifted gamma with fixed shape k = 4 (moderate right skew, like the
      // RIPE measurements the paper cites): X = shift + Gamma(k, theta)
      // with k*theta = 2*stddev matching the variance (theta = stddev/2)
      // and shift = mean - 2*stddev matching the mean.
      if (stddev <= 0.0) return mean;
      const double k = 4.0;
      const double theta = stddev / std::sqrt(k);
      const double shift = mean - k * theta;
      const double x = shift + rng.gamma(k, theta);
      return x > kMinRateMsPerKb ? x : kMinRateMsPerKb;
    }
    case RateShape::kLognormal: {
      // Match the first two moments: sigma^2 = ln(1 + s^2/m^2),
      // mu = ln m - sigma^2 / 2.
      if (stddev <= 0.0 || mean <= 0.0) {
        return mean > kMinRateMsPerKb ? mean : kMinRateMsPerKb;
      }
      const double ratio = stddev / mean;
      const double sigma_sq = std::log(1.0 + ratio * ratio);
      const double mu = std::log(mean) - 0.5 * sigma_sq;
      return rng.lognormal(mu, std::sqrt(sigma_sq));
    }
  }
  return rng.truncated_normal(mean, stddev, kMinRateMsPerKb);
}

}  // namespace bdps
