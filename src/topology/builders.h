// Overlay topology builders.
//
// `Topology` bundles the broker graph with the attachment points of
// publishers and subscribers.  `build_paper_topology` reproduces fig. 3 of
// the paper exactly; the other builders (acyclic tree — fig. 1(a) —, random
// mesh, dumbbell, ring) support the ablation benches and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "topology/graph.h"

namespace bdps {

struct Topology {
  Graph graph;
  /// publisher_edges[p] = broker that publisher p injects into.
  std::vector<BrokerId> publisher_edges;
  /// subscriber_homes[s] = edge broker serving subscriber s.
  std::vector<BrokerId> subscriber_homes;

  std::size_t publisher_count() const { return publisher_edges.size(); }
  std::size_t subscriber_count() const { return subscriber_homes.size(); }
};

/// Knobs of the paper's layered topology (§6.1 defaults).
struct PaperTopologyConfig {
  std::size_t layer1 = 4;   // One publisher behind each.
  std::size_t layer2 = 4;   // Fully connected to layer 1.
  std::size_t layer3 = 8;   // Each connects to 2 random layer-2 brokers.
  std::size_t layer4 = 16;  // Each connects to 2 random layer-3 brokers.
  std::size_t subscribers_per_edge_broker = 10;
  std::size_t uplinks_per_layer3 = 2;
  std::size_t uplinks_per_layer4 = 2;
  double link_mean_lo_ms_per_kb = 50.0;
  double link_mean_hi_ms_per_kb = 100.0;
  double link_stddev_ms_per_kb = 20.0;
};

/// Layered broker network of fig. 3: 32 brokers in 4 layers, 4 publishers,
/// 160 subscribers; per-link mean rate ~ U[50,100] ms/KB, stddev 20 ms/KB.
Topology build_paper_topology(Rng& rng,
                              const PaperTopologyConfig& config = {});

/// Acyclic (tree) overlay in the style of fig. 1(a): a random tree over
/// `broker_count` brokers; publishers and subscribers attach to leaves.
Topology build_acyclic_topology(Rng& rng, std::size_t broker_count,
                                std::size_t publisher_count,
                                std::size_t subscriber_count,
                                double link_mean_lo, double link_mean_hi,
                                double link_stddev);

/// Random connected mesh: a spanning tree plus `extra_edges` random links.
Topology build_random_mesh(Rng& rng, std::size_t broker_count,
                           std::size_t extra_edges,
                           std::size_t publisher_count,
                           std::size_t subscriber_count, double link_mean_lo,
                           double link_mean_hi, double link_stddev);

/// Two hubs joined by a bottleneck link; publishers on one side,
/// subscribers on the other.  Stresses the scheduler on a single contended
/// queue.
Topology build_dumbbell(Rng& rng, std::size_t leaves_per_side,
                        std::size_t subscribers_per_leaf,
                        LinkParams edge_link, LinkParams bottleneck_link);

/// Ring of `broker_count` brokers (cyclic mesh with exactly two paths
/// between any pair) — exercises routing tie-breaking.
Topology build_ring(Rng& rng, std::size_t broker_count,
                    std::size_t publisher_count,
                    std::size_t subscriber_count, double link_mean_lo,
                    double link_mean_hi, double link_stddev);

/// rows x cols grid (optionally wrapped into a torus): the classic
/// regular mesh with abundant equal-length paths.  Publishers attach to
/// corner brokers, subscribers uniformly.
Topology build_grid(Rng& rng, std::size_t rows, std::size_t cols,
                    bool torus, std::size_t publisher_count,
                    std::size_t subscriber_count, double link_mean_lo,
                    double link_mean_hi, double link_stddev);

/// Hub with `chains` chains of `depth` brokers each: one publisher at the
/// hub, one subscriber at every chain end.  Every hop of every chain
/// carries traffic, so the overlay serves chains x depth directed links
/// with only `chains` distinct subscriber homes — the link-scaling shape
/// of the live-runtime benches (a 128 x 128 broom is 16384 live links,
/// which a thread-per-link runtime must pay ~33k threads for).
Topology build_star_of_chains(std::size_t chains, std::size_t depth,
                              LinkParams link);

/// Barabasi-Albert preferential-attachment graph (`edges_per_node` links
/// from every new broker to degree-weighted targets): a scale-free overlay
/// whose hubs stress the per-queue scheduler far more than the paper's
/// layered mesh.
Topology build_scale_free(Rng& rng, std::size_t broker_count,
                          std::size_t edges_per_node,
                          std::size_t publisher_count,
                          std::size_t subscriber_count, double link_mean_lo,
                          double link_mean_hi, double link_stddev);

}  // namespace bdps
