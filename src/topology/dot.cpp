#include "topology/dot.h"

#include <map>
#include <set>
#include <sstream>

namespace bdps {

namespace {

std::string render(const Topology& topology, const ShortestPathTree* tree) {
  std::ostringstream os;
  os << "graph overlay {\n";
  os << "  node [shape=circle fontsize=10];\n";

  // Node decoration: publishers and subscriber counts.
  std::set<BrokerId> publisher_edges(topology.publisher_edges.begin(),
                                     topology.publisher_edges.end());
  std::map<BrokerId, int> subscriber_counts;
  for (const BrokerId home : topology.subscriber_homes) {
    ++subscriber_counts[home];
  }
  for (std::size_t b = 0; b < topology.graph.broker_count(); ++b) {
    const auto id = static_cast<BrokerId>(b);
    os << "  B" << b << " [label=\"B" << b;
    if (publisher_edges.count(id)) os << "\\nP";
    const auto subs = subscriber_counts.find(id);
    if (subs != subscriber_counts.end()) {
      os << "\\n" << subs->second << " subs";
    }
    os << "\"";
    if (tree != nullptr && id == tree->destination) {
      os << " style=filled fillcolor=lightblue";
    }
    os << "];\n";
  }

  // Tree edges (undirected canonical form) for highlighting.
  std::set<std::pair<BrokerId, BrokerId>> tree_edges;
  if (tree != nullptr) {
    for (std::size_t b = 0; b < tree->next_hop.size(); ++b) {
      const BrokerId next = tree->next_hop[b];
      if (next == kNoBroker) continue;
      tree_edges.emplace(std::min(static_cast<BrokerId>(b), next),
                         std::max(static_cast<BrokerId>(b), next));
    }
  }

  // Each undirected link once (skip the reverse direction).
  std::set<std::pair<BrokerId, BrokerId>> seen;
  for (std::size_t e = 0; e < topology.graph.edge_count(); ++e) {
    const Edge& edge = topology.graph.edge(static_cast<EdgeId>(e));
    const auto key = std::make_pair(std::min(edge.from, edge.to),
                                    std::max(edge.from, edge.to));
    if (!seen.insert(key).second) continue;
    const LinkParams& p = edge.link.params();
    os << "  B" << key.first << " -- B" << key.second << " [label=\""
       << static_cast<int>(p.mean_ms_per_kb) << "&plusmn;"
       << static_cast<int>(p.stddev_ms_per_kb) << "\" fontsize=8";
    if (tree_edges.count(key)) {
      os << " color=red penwidth=2";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace

std::string to_dot(const Topology& topology) {
  return render(topology, nullptr);
}

std::string to_dot(const Topology& topology, const ShortestPathTree& tree) {
  return render(topology, &tree);
}

}  // namespace bdps
