// Broker overlay graph.
//
// Brokers are dense ids [0, n); links are undirected in topology but stored
// as a pair of directed edges so each direction can later carry its own
// estimated parameters (asymmetric paths are common on the real Internet).
// Each directed edge owns a LinkModel.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.h"
#include "topology/link.h"

namespace bdps {

/// Index of a directed edge within the graph's edge array.
using EdgeId = std::int32_t;
inline constexpr EdgeId kNoEdge = -1;

struct Edge {
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
  LinkModel link;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t broker_count) { resize(broker_count); }

  void resize(std::size_t broker_count);

  std::size_t broker_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds a directed edge; returns its id.
  EdgeId add_edge(BrokerId from, BrokerId to, LinkParams params);

  /// Adds both directions with the same parameters (the common case for the
  /// paper's symmetric links); returns the forward edge id.
  EdgeId add_bidirectional(BrokerId a, BrokerId b, LinkParams params);

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  Edge& edge(EdgeId id) { return edges_[id]; }

  /// Outgoing edge ids of a broker.
  const std::vector<EdgeId>& out_edges(BrokerId broker) const {
    return adjacency_[broker];
  }

  /// Finds the directed edge from -> to; kNoEdge when absent.
  EdgeId find_edge(BrokerId from, BrokerId to) const;

  /// True when every edge references valid brokers and no self-loops exist.
  bool validate() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace bdps
