// Broker overlay graph.
//
// Brokers are dense ids [0, n); links are undirected in topology but stored
// as a pair of directed edges so each direction can later carry its own
// estimated parameters (asymmetric paths are common on the real Internet).
// Each directed edge owns a LinkModel.
//
// EdgeId is the system-wide link address: `edge_id(from, to)` resolves a
// directed link in O(log degree) over a per-broker adjacency kept sorted by
// destination (degree is small and the row is contiguous, so in practice
// this is a handful of comparisons in one cache line), and every consumer
// then indexes flat per-edge state (topology/edge_map.h) by the returned
// id.  `find_edge` survives as the validated slow path — a linear scan in
// insertion order — and debug builds assert the two agree.
//
// Migration notes (map-keyed link state → EdgeId, PR 3):
//   * `std::map<std::pair<BrokerId, BrokerId>, T>` per-link state →
//     `EdgeMap<T>` indexed by `graph.edge_id(from, to)`; per-link booleans
//     (dead links, membership) → `EdgeFlags`.
//   * Hot paths should carry the EdgeId alongside the neighbour id
//     (`LinkRef`, common/types.h) instead of re-resolving: subscription
//     table rows expose `next_hop_edge`, fan-out groups expose `edge`, and
//     `OutputQueue::edge()` names its link.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.h"
#include "topology/link.h"

namespace bdps {

struct Edge {
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
  LinkModel link;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t broker_count) { resize(broker_count); }

  void resize(std::size_t broker_count);

  std::size_t broker_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds a directed edge; returns its id.
  EdgeId add_edge(BrokerId from, BrokerId to, LinkParams params);

  /// Adds both directions with the same parameters (the common case for the
  /// paper's symmetric links); returns the forward edge id.
  EdgeId add_bidirectional(BrokerId a, BrokerId b, LinkParams params);

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  Edge& edge(EdgeId id) { return edges_[id]; }

  /// Outgoing edge ids of a broker, in insertion order.
  const std::vector<EdgeId>& out_edges(BrokerId broker) const {
    return adjacency_[broker];
  }

  /// Directed edge from -> to, kNoEdge when absent: binary search over the
  /// destination-sorted adjacency row (the hot-path resolver; debug builds
  /// assert agreement with find_edge).  Parallel edges resolve to the
  /// first-added one, like find_edge.
  EdgeId edge_id(BrokerId from, BrokerId to) const;

  /// Finds the directed edge from -> to by linear scan; kNoEdge when
  /// absent.  The validated slow path behind edge_id — prefer edge_id
  /// everywhere speed matters.
  EdgeId find_edge(BrokerId from, BrokerId to) const;

  /// True when every edge references valid brokers and no self-loops exist.
  bool validate() const;

 private:
  struct OutRef {
    BrokerId to = kNoBroker;
    EdgeId id = kNoEdge;
  };

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
  /// Per-broker out-links sorted by destination (ties: insertion order);
  /// the index behind edge_id.
  std::vector<std::vector<OutRef>> sorted_out_;
};

}  // namespace bdps
