#include "topology/builders.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace bdps {

namespace {

LinkParams random_link(Rng& rng, double mean_lo, double mean_hi,
                       double stddev) {
  return LinkParams{rng.uniform(mean_lo, mean_hi), stddev};
}

/// Picks `k` distinct values from [0, n) uniformly (partial Fisher–Yates).
std::vector<std::size_t> sample_distinct(Rng& rng, std::size_t n,
                                         std::size_t k) {
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace

Topology build_paper_topology(Rng& rng, const PaperTopologyConfig& config) {
  if (config.uplinks_per_layer3 > config.layer2 ||
      config.uplinks_per_layer4 > config.layer3) {
    throw std::invalid_argument(
        "paper topology: more uplinks requested than parent brokers");
  }

  Topology topo;
  const std::size_t total =
      config.layer1 + config.layer2 + config.layer3 + config.layer4;
  topo.graph.resize(total);

  const std::size_t l1_base = 0;
  const std::size_t l2_base = config.layer1;
  const std::size_t l3_base = l2_base + config.layer2;
  const std::size_t l4_base = l3_base + config.layer3;

  auto link = [&] {
    return random_link(rng, config.link_mean_lo_ms_per_kb,
                       config.link_mean_hi_ms_per_kb,
                       config.link_stddev_ms_per_kb);
  };

  // Layer 1 <-> layer 2: full bipartite mesh.
  for (std::size_t i = 0; i < config.layer1; ++i) {
    for (std::size_t j = 0; j < config.layer2; ++j) {
      topo.graph.add_bidirectional(static_cast<BrokerId>(l1_base + i),
                                   static_cast<BrokerId>(l2_base + j),
                                   link());
    }
  }

  // Layer 3: each broker picks distinct random parents in layer 2.
  for (std::size_t i = 0; i < config.layer3; ++i) {
    for (const std::size_t parent :
         sample_distinct(rng, config.layer2, config.uplinks_per_layer3)) {
      topo.graph.add_bidirectional(static_cast<BrokerId>(l3_base + i),
                                   static_cast<BrokerId>(l2_base + parent),
                                   link());
    }
  }

  // Layer 4: each broker picks distinct random parents in layer 3.
  for (std::size_t i = 0; i < config.layer4; ++i) {
    for (const std::size_t parent :
         sample_distinct(rng, config.layer3, config.uplinks_per_layer4)) {
      topo.graph.add_bidirectional(static_cast<BrokerId>(l4_base + i),
                                   static_cast<BrokerId>(l3_base + parent),
                                   link());
    }
  }

  // One publisher behind each layer-1 broker.
  for (std::size_t i = 0; i < config.layer1; ++i) {
    topo.publisher_edges.push_back(static_cast<BrokerId>(l1_base + i));
  }

  // Subscribers attach to layer-4 edge brokers.
  for (std::size_t i = 0; i < config.layer4; ++i) {
    for (std::size_t s = 0; s < config.subscribers_per_edge_broker; ++s) {
      topo.subscriber_homes.push_back(static_cast<BrokerId>(l4_base + i));
    }
  }
  return topo;
}

Topology build_acyclic_topology(Rng& rng, std::size_t broker_count,
                                std::size_t publisher_count,
                                std::size_t subscriber_count,
                                double link_mean_lo, double link_mean_hi,
                                double link_stddev) {
  if (broker_count == 0) throw std::invalid_argument("empty topology");
  Topology topo;
  topo.graph.resize(broker_count);

  // Random recursive tree: broker i > 0 attaches to a uniform earlier one.
  for (std::size_t i = 1; i < broker_count; ++i) {
    const auto parent = static_cast<BrokerId>(rng.uniform_index(i));
    topo.graph.add_bidirectional(
        static_cast<BrokerId>(i), parent,
        random_link(rng, link_mean_lo, link_mean_hi, link_stddev));
  }

  for (std::size_t p = 0; p < publisher_count; ++p) {
    topo.publisher_edges.push_back(
        static_cast<BrokerId>(rng.uniform_index(broker_count)));
  }
  for (std::size_t s = 0; s < subscriber_count; ++s) {
    topo.subscriber_homes.push_back(
        static_cast<BrokerId>(rng.uniform_index(broker_count)));
  }
  return topo;
}

Topology build_random_mesh(Rng& rng, std::size_t broker_count,
                           std::size_t extra_edges,
                           std::size_t publisher_count,
                           std::size_t subscriber_count, double link_mean_lo,
                           double link_mean_hi, double link_stddev) {
  Topology topo = build_acyclic_topology(rng, broker_count, publisher_count,
                                         subscriber_count, link_mean_lo,
                                         link_mean_hi, link_stddev);
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (extra_edges + 1);
  while (added < extra_edges && ++attempts < max_attempts) {
    const auto a = static_cast<BrokerId>(rng.uniform_index(broker_count));
    const auto b = static_cast<BrokerId>(rng.uniform_index(broker_count));
    if (a == b || topo.graph.edge_id(a, b) != kNoEdge) continue;
    topo.graph.add_bidirectional(
        a, b, random_link(rng, link_mean_lo, link_mean_hi, link_stddev));
    ++added;
  }
  return topo;
}

Topology build_dumbbell(Rng& rng, std::size_t leaves_per_side,
                        std::size_t subscribers_per_leaf,
                        LinkParams edge_link, LinkParams bottleneck_link) {
  (void)rng;  // Deterministic by construction; kept for interface symmetry.
  Topology topo;
  // Brokers: [0] left hub, [1] right hub, then left leaves, right leaves.
  const std::size_t total = 2 + 2 * leaves_per_side;
  topo.graph.resize(total);
  const BrokerId left_hub = 0;
  const BrokerId right_hub = 1;
  topo.graph.add_bidirectional(left_hub, right_hub, bottleneck_link);

  for (std::size_t i = 0; i < leaves_per_side; ++i) {
    const auto left_leaf = static_cast<BrokerId>(2 + i);
    const auto right_leaf = static_cast<BrokerId>(2 + leaves_per_side + i);
    topo.graph.add_bidirectional(left_hub, left_leaf, edge_link);
    topo.graph.add_bidirectional(right_hub, right_leaf, edge_link);
    topo.publisher_edges.push_back(left_leaf);
    for (std::size_t s = 0; s < subscribers_per_leaf; ++s) {
      topo.subscriber_homes.push_back(right_leaf);
    }
  }
  return topo;
}

Topology build_ring(Rng& rng, std::size_t broker_count,
                    std::size_t publisher_count,
                    std::size_t subscriber_count, double link_mean_lo,
                    double link_mean_hi, double link_stddev) {
  if (broker_count < 3) throw std::invalid_argument("ring needs >= 3 brokers");
  Topology topo;
  topo.graph.resize(broker_count);
  for (std::size_t i = 0; i < broker_count; ++i) {
    topo.graph.add_bidirectional(
        static_cast<BrokerId>(i),
        static_cast<BrokerId>((i + 1) % broker_count),
        random_link(rng, link_mean_lo, link_mean_hi, link_stddev));
  }
  for (std::size_t p = 0; p < publisher_count; ++p) {
    topo.publisher_edges.push_back(
        static_cast<BrokerId>(rng.uniform_index(broker_count)));
  }
  for (std::size_t s = 0; s < subscriber_count; ++s) {
    topo.subscriber_homes.push_back(
        static_cast<BrokerId>(rng.uniform_index(broker_count)));
  }
  return topo;
}

Topology build_grid(Rng& rng, std::size_t rows, std::size_t cols, bool torus,
                    std::size_t publisher_count, std::size_t subscriber_count,
                    double link_mean_lo, double link_mean_hi,
                    double link_stddev) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("grid needs at least 2x2 brokers");
  }
  const std::size_t n = rows * cols;
  Topology topo;
  topo.graph.resize(n);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<BrokerId>(r * cols + c);
  };
  auto link = [&] {
    return random_link(rng, link_mean_lo, link_mean_hi, link_stddev);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.graph.add_bidirectional(id(r, c), id(r, c + 1), link());
      if (r + 1 < rows) topo.graph.add_bidirectional(id(r, c), id(r + 1, c), link());
    }
  }
  if (torus) {
    // Wrap rows and columns (avoid double edges on 2-wide dimensions).
    if (cols > 2) {
      for (std::size_t r = 0; r < rows; ++r) {
        topo.graph.add_bidirectional(id(r, cols - 1), id(r, 0), link());
      }
    }
    if (rows > 2) {
      for (std::size_t c = 0; c < cols; ++c) {
        topo.graph.add_bidirectional(id(rows - 1, c), id(0, c), link());
      }
    }
  }
  // Publishers at the corners (cycling if more than 4 requested).
  const BrokerId corners[] = {id(0, 0), id(0, cols - 1), id(rows - 1, 0),
                              id(rows - 1, cols - 1)};
  for (std::size_t p = 0; p < publisher_count; ++p) {
    topo.publisher_edges.push_back(corners[p % 4]);
  }
  for (std::size_t s = 0; s < subscriber_count; ++s) {
    topo.subscriber_homes.push_back(
        static_cast<BrokerId>(rng.uniform_index(n)));
  }
  return topo;
}

Topology build_star_of_chains(std::size_t chains, std::size_t depth,
                              LinkParams link) {
  if (chains == 0 || depth == 0) {
    throw std::invalid_argument("star of chains needs chains, depth >= 1");
  }
  Topology topo;
  // Broker 0 is the hub; chain c occupies [1 + c*depth, 1 + (c+1)*depth).
  topo.graph.resize(1 + chains * depth);
  topo.publisher_edges.push_back(0);
  for (std::size_t c = 0; c < chains; ++c) {
    BrokerId previous = 0;
    for (std::size_t d = 0; d < depth; ++d) {
      const auto broker = static_cast<BrokerId>(1 + c * depth + d);
      topo.graph.add_bidirectional(previous, broker, link);
      previous = broker;
    }
    topo.subscriber_homes.push_back(previous);  // The chain's end broker.
  }
  return topo;
}

Topology build_scale_free(Rng& rng, std::size_t broker_count,
                          std::size_t edges_per_node,
                          std::size_t publisher_count,
                          std::size_t subscriber_count, double link_mean_lo,
                          double link_mean_hi, double link_stddev) {
  if (broker_count < 2 || edges_per_node == 0) {
    throw std::invalid_argument("scale-free graph needs >= 2 brokers, m >= 1");
  }
  Topology topo;
  topo.graph.resize(broker_count);
  auto link = [&] {
    return random_link(rng, link_mean_lo, link_mean_hi, link_stddev);
  };
  // Degree-proportional target sampling via the repeated-endpoints trick:
  // every edge endpoint appears once in `endpoints`, so a uniform draw from
  // it is a preferential draw over brokers.
  std::vector<BrokerId> endpoints;
  topo.graph.add_bidirectional(0, 1, link());
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (std::size_t b = 2; b < broker_count; ++b) {
    const std::size_t m = std::min(edges_per_node, b);
    std::set<BrokerId> targets;
    std::size_t guard = 0;
    while (targets.size() < m && ++guard < 64 * m) {
      targets.insert(endpoints[rng.uniform_index(endpoints.size())]);
    }
    for (const BrokerId t : targets) {
      topo.graph.add_bidirectional(static_cast<BrokerId>(b), t, link());
      endpoints.push_back(static_cast<BrokerId>(b));
      endpoints.push_back(t);
    }
  }
  for (std::size_t p = 0; p < publisher_count; ++p) {
    topo.publisher_edges.push_back(
        static_cast<BrokerId>(rng.uniform_index(broker_count)));
  }
  for (std::size_t s = 0; s < subscriber_count; ++s) {
    topo.subscriber_homes.push_back(
        static_cast<BrokerId>(rng.uniform_index(broker_count)));
  }
  return topo;
}

}  // namespace bdps
