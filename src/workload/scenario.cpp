#include "workload/scenario.h"

#include <stdexcept>

namespace bdps {

std::string scenario_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kPsd:
      return "PSD";
    case ScenarioKind::kSsd:
      return "SSD";
    case ScenarioKind::kBoth:
      return "BOTH";
  }
  return "?";
}

ScenarioKind parse_scenario(const std::string& name) {
  if (name == "PSD" || name == "psd") return ScenarioKind::kPsd;
  if (name == "SSD" || name == "ssd") return ScenarioKind::kSsd;
  if (name == "BOTH" || name == "both") return ScenarioKind::kBoth;
  throw std::invalid_argument("unknown scenario: " + name);
}

}  // namespace bdps
