// Workload generation: the publish schedule and the subscription set.
#pragma once

#include <memory>
#include <vector>

#include "common/random.h"
#include "routing/subscription.h"
#include "topology/builders.h"
#include "workload/scenario.h"

namespace bdps {

/// All messages one run publishes, sorted by publish time, with ids dense
/// in publication order.
std::vector<std::shared_ptr<const Message>> generate_messages(
    Rng& rng, const WorkloadConfig& config, std::size_t publisher_count);

/// One subscription per subscriber in `topology`, with the §6.1 filters and
/// the scenario's deadline/price assignment.
std::vector<Subscription> generate_subscriptions(Rng& rng,
                                                 const WorkloadConfig& config,
                                                 const Topology& topology);

/// Deterministic Zipf(exponent) sampler over ranks 0..n-1: weight of rank
/// k is (k+1)^-exponent.  One uniform draw and a binary search over the
/// precomputed CDF per sample, so it is cheap enough for hot generation
/// loops and exactly reproducible from the Rng stream (the bench, the
/// scaling probe and the fuzz tests all share it).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  std::size_t size() const { return cdf_.size(); }
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Matching-fabric churn workload (popularity-skewed filter space).
///
/// Real content-based workloads are head-heavy: a few attributes and a few
/// thresholds draw most of the subscriptions, which is exactly what makes
/// covering/equivalence merging pay.  Attributes and operand thresholds
/// are drawn from Zipf pools, so exact duplicates (equivalence merges) and
/// wide single-bound filters (cover roots) arise at controllable rates.
struct ChurnWorkloadConfig {
  std::uint64_t seed = 1;
  /// Attribute name pool ("Z1".."Zn") and its popularity skew.
  std::size_t attribute_pool = 64;
  double attribute_exponent = 1.1;
  /// Discrete operand thresholds per attribute (popular thresholds create
  /// exact-duplicate filters) and their skew.
  std::size_t threshold_pool = 64;
  double threshold_exponent = 1.0;
  /// Predicates per filter, uniform in [min, max].
  std::size_t predicates_min = 1;
  std::size_t predicates_max = 3;
  /// Operand/value range the threshold grid spans.
  double value_lo = 0.0;
  double value_hi = 100.0;
  /// Per-predicate class mix: wide single-bound comparisons (the cover
  /// roots), string equalities, numeric point equalities; the remainder
  /// are bounded intervals (kGe + kLe pairs).
  double wide_fraction = 0.15;
  double string_fraction = 0.10;
  double eq_fraction = 0.10;
  /// Attributes per published message head (distinct names).
  std::size_t message_attributes = 6;
};

/// One step of a churn schedule.
struct ChurnOp {
  enum class Kind { kAdd, kRemove };
  Kind kind = Kind::kAdd;
  Filter filter;           // kAdd only.
  std::size_t victim = 0;  // kRemove only: index into the live set.
};

/// Deterministic generator bundling the seed-split streams (filters,
/// messages, op schedule) so every consumer reproduces the identical
/// workload from a ChurnWorkloadConfig alone.
class ChurnWorkload {
 public:
  explicit ChurnWorkload(const ChurnWorkloadConfig& config);

  const ChurnWorkloadConfig& config() const { return config_; }

  /// Next subscription filter from the filter stream.
  Filter next_filter();

  /// Next published message (head drawn from the same popularity pools;
  /// ids sequential, publish times 1 ms apart).
  Message next_message();

  /// Next schedule step: a remove of a uniform victim in [0, live_count)
  /// with probability remove_fraction (when anything is live), else an add
  /// of the next filter.
  ChurnOp next_op(double remove_fraction, std::size_t live_count);

 private:
  ChurnWorkloadConfig config_;
  ZipfSampler attribute_zipf_;
  ZipfSampler threshold_zipf_;
  Rng filter_rng_;
  Rng message_rng_;
  Rng op_rng_;
  MessageId next_message_id_ = 0;
};

}  // namespace bdps
