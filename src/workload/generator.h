// Workload generation: the publish schedule and the subscription set.
#pragma once

#include <memory>
#include <vector>

#include "common/random.h"
#include "routing/subscription.h"
#include "topology/builders.h"
#include "workload/scenario.h"

namespace bdps {

/// All messages one run publishes, sorted by publish time, with ids dense
/// in publication order.
std::vector<std::shared_ptr<const Message>> generate_messages(
    Rng& rng, const WorkloadConfig& config, std::size_t publisher_count);

/// One subscription per subscriber in `topology`, with the §6.1 filters and
/// the scenario's deadline/price assignment.
std::vector<Subscription> generate_subscriptions(Rng& rng,
                                                 const WorkloadConfig& config,
                                                 const Topology& topology);

}  // namespace bdps
