// Workload scenarios (§4.1 and §6.1).
//
// PSD — publishers stamp each message with an allowed delay drawn from
// U[10s, 30s]; subscribers give no bound and pay price 1.
// SSD — each subscription draws a (deadline, price) tier from
// {(10s, 3), (30s, 2), (60s, 1)}; messages carry no bound.
//
// The workload itself (§6.1): each of the 4 publishers emits 50 KB messages
// whose heads are {A1 = x1, A2 = x2}, x ~ U(0, 10); every subscriber filters
// with "A1 < y1 && A2 < y2", y ~ U(0, 10) — an expected selectivity of 25%.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bdps {

// kBoth is the extension §4.1 sketches ("our work can easily be extended to
// the case where both publishers and subscribers specify their delay
// requirements"): messages carry publisher bounds *and* subscriptions carry
// (deadline, price) tiers; the tighter bound governs each pair.
enum class ScenarioKind { kPsd, kSsd, kBoth };

std::string scenario_name(ScenarioKind kind);
ScenarioKind parse_scenario(const std::string& name);

/// One (allowed delay, price) tier of the SSD scenario.
struct DelayTier {
  TimeMs allowed_delay = 0.0;
  double price = 1.0;
};

struct WorkloadConfig {
  ScenarioKind scenario = ScenarioKind::kPsd;

  /// Messages per minute per publisher (the paper's "publishing rate").
  double publishing_rate_per_min = 10.0;
  /// Poisson process (exponential gaps) when true; fixed-interval when
  /// false.  The paper says "continuously publishes ... at a certain rate";
  /// Poisson is the neutral reading and the default.
  bool poisson_arrivals = true;
  /// Test period length (paper: 2 hours).
  TimeMs duration = hours(2.0);

  /// Message payload size (paper: 50 KB).
  double message_size_kb = 50.0;

  /// Attribute space: `attribute_count` attributes named A1.. drawn from
  /// U(attribute_lo, attribute_hi); subscriptions constrain each one with
  /// "Ai < y".  Two attributes over (0,10) give the paper's 25% average
  /// selectivity.
  int attribute_count = 2;
  double attribute_lo = 0.0;
  double attribute_hi = 10.0;

  /// PSD: allowed delay ~ U[psd_delay_lo, psd_delay_hi].
  TimeMs psd_delay_lo = seconds(10.0);
  TimeMs psd_delay_hi = seconds(30.0);

  /// SSD tiers (uniformly chosen per subscription).
  std::vector<DelayTier> ssd_tiers = {
      {seconds(10.0), 3.0}, {seconds(30.0), 2.0}, {seconds(60.0), 1.0}};

  /// Subscription churn: each subscription is active for a contiguous
  /// window covering (1 - churn_fraction) of the run, with a random start
  /// phase.  0 (the paper's setting) = active throughout.
  double churn_fraction = 0.0;

  /// One flash-crowd window: during [at, at + duration) every publisher's
  /// rate is multiplied by rate_multiplier (> 1), modeled as an extra
  /// superposed Poisson process at (rate_multiplier - 1) × the base rate.
  struct PublishBurst {
    TimeMs at = 0.0;
    TimeMs duration = 0.0;
    double rate_multiplier = 1.0;
  };
  /// Flash-crowd publish bursts (fault-storm scenarios).  Empty (the
  /// default) consumes no extra randomness, so burst-free runs are
  /// byte-identical to before the knob existed.
  std::vector<PublishBurst> bursts;

  /// Expected number of messages one publisher emits over the duration.
  double expected_messages_per_publisher() const {
    return publishing_rate_per_min * (duration / 60000.0);
  }
};

}  // namespace bdps
