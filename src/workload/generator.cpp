#include "workload/generator.h"

#include <algorithm>
#include <string>

namespace bdps {

namespace {
std::string attribute_name(int index) { return "A" + std::to_string(index + 1); }
}  // namespace

std::vector<std::shared_ptr<const Message>> generate_messages(
    Rng& rng, const WorkloadConfig& config, std::size_t publisher_count) {
  std::vector<std::shared_ptr<const Message>> messages;

  const double mean_gap_ms = 60000.0 / config.publishing_rate_per_min;
  const auto synthesize = [&](std::size_t p, TimeMs t) {
    std::vector<Attribute> head;
    head.reserve(static_cast<std::size_t>(config.attribute_count));
    for (int a = 0; a < config.attribute_count; ++a) {
      head.push_back(Attribute{
          attribute_name(a),
          Value(rng.uniform(config.attribute_lo, config.attribute_hi))});
    }
    const TimeMs allowed =
        config.scenario == ScenarioKind::kSsd
            ? kNoDeadline
            : rng.uniform(config.psd_delay_lo, config.psd_delay_hi);
    messages.push_back(std::make_shared<Message>(
        /*id=*/0, static_cast<PublisherId>(p), t, config.message_size_kb,
        std::move(head), allowed));
  };
  for (std::size_t p = 0; p < publisher_count; ++p) {
    // Fixed-interval publishers get a random phase so they do not fire in
    // lock-step across the system.
    TimeMs t = config.poisson_arrivals ? rng.exponential(mean_gap_ms)
                                       : rng.uniform(0.0, mean_gap_ms);
    while (t < config.duration) {
      synthesize(p, t);
      t += config.poisson_arrivals ? rng.exponential(mean_gap_ms)
                                   : mean_gap_ms;
    }
  }
  // Flash-crowd bursts: superpose an extra Poisson process per publisher at
  // (multiplier - 1) × the base rate inside each window.  Drawn after the
  // base schedule so burst-free configs consume the identical stream.
  for (const WorkloadConfig::PublishBurst& burst : config.bursts) {
    if (!(burst.rate_multiplier > 1.0) || !(burst.duration > 0.0)) continue;
    const double extra_gap = mean_gap_ms / (burst.rate_multiplier - 1.0);
    const TimeMs burst_end = std::min(burst.at + burst.duration,
                                      config.duration);
    for (std::size_t p = 0; p < publisher_count; ++p) {
      TimeMs t = burst.at + rng.exponential(extra_gap);
      while (t < burst_end) {
        synthesize(p, t);
        t += rng.exponential(extra_gap);
      }
    }
  }

  std::sort(messages.begin(), messages.end(),
            [](const auto& a, const auto& b) {
              if (a->publish_time() != b->publish_time()) {
                return a->publish_time() < b->publish_time();
              }
              return a->publisher() < b->publisher();
            });
  // Re-stamp ids in publication order (stable diagnostics across runs).
  std::vector<std::shared_ptr<const Message>> result;
  result.reserve(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const Message& m = *messages[i];
    result.push_back(std::make_shared<Message>(
        static_cast<MessageId>(i), m.publisher(), m.publish_time(),
        m.size_kb(), m.head(), m.allowed_delay()));
  }
  return result;
}

std::vector<Subscription> generate_subscriptions(Rng& rng,
                                                 const WorkloadConfig& config,
                                                 const Topology& topology) {
  std::vector<Subscription> subscriptions;
  subscriptions.reserve(topology.subscriber_count());

  for (std::size_t s = 0; s < topology.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topology.subscriber_homes[s];

    Filter filter;
    for (int a = 0; a < config.attribute_count; ++a) {
      filter.where(attribute_name(a), Op::kLt,
                   Value(rng.uniform(config.attribute_lo,
                                     config.attribute_hi)));
    }
    sub.filter = std::move(filter);

    if (config.scenario == ScenarioKind::kPsd) {
      sub.allowed_delay = kNoDeadline;  // The message's bound governs.
      sub.price = 1.0;
    } else {
      const auto& tier =
          config.ssd_tiers[rng.uniform_index(config.ssd_tiers.size())];
      sub.allowed_delay = tier.allowed_delay;
      sub.price = tier.price;
    }

    if (config.churn_fraction > 0.0) {
      const double f = std::min(config.churn_fraction, 1.0);
      const TimeMs window = config.duration * (1.0 - f);
      sub.active_from = rng.uniform(0.0, config.duration - window);
      sub.active_to = sub.active_from + window;
    }
    subscriptions.push_back(std::move(sub));
  }
  return subscriptions;
}

}  // namespace bdps
