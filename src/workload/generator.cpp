#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace bdps {

namespace {
std::string attribute_name(int index) { return "A" + std::to_string(index + 1); }

/// Churn-pool attribute names; a distinct prefix from the §6.1 "A" space
/// so mixed workloads cannot alias.
std::string churn_attribute_name(std::size_t index) {
  return "Z" + std::to_string(index + 1);
}
}  // namespace

std::vector<std::shared_ptr<const Message>> generate_messages(
    Rng& rng, const WorkloadConfig& config, std::size_t publisher_count) {
  std::vector<std::shared_ptr<const Message>> messages;

  const double mean_gap_ms = 60000.0 / config.publishing_rate_per_min;
  const auto synthesize = [&](std::size_t p, TimeMs t) {
    std::vector<Attribute> head;
    head.reserve(static_cast<std::size_t>(config.attribute_count));
    for (int a = 0; a < config.attribute_count; ++a) {
      head.push_back(Attribute{
          attribute_name(a),
          Value(rng.uniform(config.attribute_lo, config.attribute_hi))});
    }
    const TimeMs allowed =
        config.scenario == ScenarioKind::kSsd
            ? kNoDeadline
            : rng.uniform(config.psd_delay_lo, config.psd_delay_hi);
    // Heads with repeated attribute names sit outside the matching
    // engines' equivalence contract (message/message.h); every generator
    // feeding the index pins uniqueness here.
    assert(head_has_unique_attribute_names(head));
    messages.push_back(std::make_shared<Message>(
        /*id=*/0, static_cast<PublisherId>(p), t, config.message_size_kb,
        std::move(head), allowed));
  };
  for (std::size_t p = 0; p < publisher_count; ++p) {
    // Fixed-interval publishers get a random phase so they do not fire in
    // lock-step across the system.
    TimeMs t = config.poisson_arrivals ? rng.exponential(mean_gap_ms)
                                       : rng.uniform(0.0, mean_gap_ms);
    while (t < config.duration) {
      synthesize(p, t);
      t += config.poisson_arrivals ? rng.exponential(mean_gap_ms)
                                   : mean_gap_ms;
    }
  }
  // Flash-crowd bursts: superpose an extra Poisson process per publisher at
  // (multiplier - 1) × the base rate inside each window.  Drawn after the
  // base schedule so burst-free configs consume the identical stream.
  for (const WorkloadConfig::PublishBurst& burst : config.bursts) {
    if (!(burst.rate_multiplier > 1.0) || !(burst.duration > 0.0)) continue;
    const double extra_gap = mean_gap_ms / (burst.rate_multiplier - 1.0);
    const TimeMs burst_end = std::min(burst.at + burst.duration,
                                      config.duration);
    for (std::size_t p = 0; p < publisher_count; ++p) {
      TimeMs t = burst.at + rng.exponential(extra_gap);
      while (t < burst_end) {
        synthesize(p, t);
        t += rng.exponential(extra_gap);
      }
    }
  }

  std::sort(messages.begin(), messages.end(),
            [](const auto& a, const auto& b) {
              if (a->publish_time() != b->publish_time()) {
                return a->publish_time() < b->publish_time();
              }
              return a->publisher() < b->publisher();
            });
  // Re-stamp ids in publication order (stable diagnostics across runs).
  std::vector<std::shared_ptr<const Message>> result;
  result.reserve(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const Message& m = *messages[i];
    result.push_back(std::make_shared<Message>(
        static_cast<MessageId>(i), m.publisher(), m.publish_time(),
        m.size_kb(), m.head(), m.allowed_delay()));
  }
  return result;
}

std::vector<Subscription> generate_subscriptions(Rng& rng,
                                                 const WorkloadConfig& config,
                                                 const Topology& topology) {
  std::vector<Subscription> subscriptions;
  subscriptions.reserve(topology.subscriber_count());

  for (std::size_t s = 0; s < topology.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topology.subscriber_homes[s];

    Filter filter;
    for (int a = 0; a < config.attribute_count; ++a) {
      filter.where(attribute_name(a), Op::kLt,
                   Value(rng.uniform(config.attribute_lo,
                                     config.attribute_hi)));
    }
    sub.filter = std::move(filter);

    if (config.scenario == ScenarioKind::kPsd) {
      sub.allowed_delay = kNoDeadline;  // The message's bound governs.
      sub.price = 1.0;
    } else {
      const auto& tier =
          config.ssd_tiers[rng.uniform_index(config.ssd_tiers.size())];
      sub.allowed_delay = tier.allowed_delay;
      sub.price = tier.price;
    }

    if (config.churn_fraction > 0.0) {
      const double f = std::min(config.churn_fraction, 1.0);
      const TimeMs window = config.duration * (1.0 - f);
      sub.active_from = rng.uniform(0.0, config.duration - window);
      sub.active_to = sub.active_from + window;
    }
    subscriptions.push_back(std::move(sub));
  }
  return subscriptions;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  cdf_.reserve(n == 0 ? 1 : n);
  double total = 0.0;
  for (std::size_t k = 0; k < (n == 0 ? 1 : n); ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t k = static_cast<std::size_t>(it - cdf_.begin());
  return k < cdf_.size() ? k : cdf_.size() - 1;
}

ChurnWorkload::ChurnWorkload(const ChurnWorkloadConfig& config)
    : config_(config),
      attribute_zipf_(config.attribute_pool, config.attribute_exponent),
      threshold_zipf_(config.threshold_pool, config.threshold_exponent),
      filter_rng_(0),
      message_rng_(0),
      op_rng_(0) {
  // Seed-split stream discipline (experiment/runner.cpp's idiom): each
  // stream is split from the root in a fixed order, so drawing more
  // filters never perturbs the message schedule and vice versa.
  Rng root(config_.seed);
  filter_rng_ = root.split();
  message_rng_ = root.split();
  op_rng_ = root.split();
}

Filter ChurnWorkload::next_filter() {
  const std::size_t count =
      config_.predicates_min +
      filter_rng_.uniform_index(config_.predicates_max -
                                config_.predicates_min + 1);
  const double span = config_.value_hi - config_.value_lo;
  // Threshold grid point for a sampled rank (popular ranks repeat, which
  // is what manufactures exact-duplicate filters).
  const auto threshold = [&](std::size_t rank) {
    return config_.value_lo +
           span * (static_cast<double>(rank) + 0.5) /
               static_cast<double>(threshold_zipf_.size());
  };

  Filter filter;
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < count; ++i) {
    // Distinct attributes per filter (conjuncts on one attribute would
    // just intersect); bounded resampling keeps the draw deterministic.
    std::size_t attr = attribute_zipf_.sample(filter_rng_);
    for (int tries = 0;
         tries < 8 && std::count(used.begin(), used.end(), attr) != 0;
         ++tries) {
      attr = attribute_zipf_.sample(filter_rng_);
    }
    if (std::count(used.begin(), used.end(), attr) != 0) continue;
    used.push_back(attr);
    const std::string name = churn_attribute_name(attr);

    const double cls = filter_rng_.uniform();
    const std::size_t rank = threshold_zipf_.sample(filter_rng_);
    if (cls < config_.wide_fraction) {
      // Wide single-bound comparison — the natural cover root.
      filter.where(name, filter_rng_.uniform() < 0.5 ? Op::kLe : Op::kGe,
                   Value(threshold(rank)));
    } else if (cls < config_.wide_fraction + config_.string_fraction) {
      filter.where(name, Op::kEq, Value("s" + std::to_string(rank)));
    } else if (cls < config_.wide_fraction + config_.string_fraction +
                         config_.eq_fraction) {
      filter.where(name, Op::kEq, Value(threshold(rank)));
    } else {
      // Bounded interval [t(rank), t(rank) + width], width itself from the
      // threshold stream so popular (lo, width) pairs collide.
      const std::size_t width_rank = threshold_zipf_.sample(filter_rng_);
      const double lo = threshold(rank);
      const double width =
          span * (static_cast<double>(width_rank) + 1.0) /
          static_cast<double>(threshold_zipf_.size());
      filter.where(name, Op::kGe, Value(lo));
      filter.where(name, Op::kLe, Value(std::min(lo + width,
                                                 config_.value_hi)));
    }
  }
  return filter;
}

Message ChurnWorkload::next_message() {
  std::vector<Attribute> head;
  head.reserve(config_.message_attributes);
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < config_.message_attributes; ++i) {
    std::size_t attr = attribute_zipf_.sample(message_rng_);
    for (int tries = 0;
         tries < 8 && std::count(used.begin(), used.end(), attr) != 0;
         ++tries) {
      attr = attribute_zipf_.sample(message_rng_);
    }
    if (std::count(used.begin(), used.end(), attr) != 0) continue;
    used.push_back(attr);
    const std::string name = churn_attribute_name(attr);
    // Values split between the threshold grid (hitting equality filters
    // and interval endpoints) and the continuum.
    if (message_rng_.uniform() < 0.25) {
      const std::size_t rank = threshold_zipf_.sample(message_rng_);
      const double span = config_.value_hi - config_.value_lo;
      if (message_rng_.uniform() < 0.25) {
        head.push_back(Attribute{name, Value("s" + std::to_string(rank))});
      } else {
        head.push_back(Attribute{
            name, Value(config_.value_lo +
                        span * (static_cast<double>(rank) + 0.5) /
                            static_cast<double>(threshold_zipf_.size()))});
      }
    } else {
      head.push_back(Attribute{
          name,
          Value(message_rng_.uniform(config_.value_lo, config_.value_hi))});
    }
  }
  assert(head_has_unique_attribute_names(head));
  const MessageId id = next_message_id_++;
  return Message(id, /*publisher=*/0,
                 /*publish_time=*/static_cast<TimeMs>(id),
                 /*size_kb=*/1.0, std::move(head));
}

ChurnOp ChurnWorkload::next_op(double remove_fraction,
                               std::size_t live_count) {
  ChurnOp op;
  if (live_count > 0 && op_rng_.uniform() < remove_fraction) {
    op.kind = ChurnOp::Kind::kRemove;
    op.victim = op_rng_.uniform_index(live_count);
    return op;
  }
  op.kind = ChurnOp::Kind::kAdd;
  op.filter = next_filter();
  return op;
}

}  // namespace bdps
