// Terminal chart rendering for the figure benches.
//
// The paper's evaluation artifacts are *plots*; the bench binaries print
// both the numeric table and this ASCII rendering so the crossovers and
// collapses are visible at a glance without leaving the terminal.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace bdps {

class AsciiChart {
 public:
  /// `width`/`height` of the plotting area in characters (excluding axes).
  AsciiChart(int width = 60, int height = 16);

  /// Adds one named series; points are (x, y) pairs.  Up to 6 series get
  /// distinct markers (*, o, +, x, #, @), cycling beyond that.
  void add_series(const std::string& name,
                  std::vector<std::pair<double, double>> points);

  /// Forces the y range (default: auto-fit with a small margin).
  void set_y_range(double lo, double hi);

  /// Renders the chart, axes, and legend.
  void print(std::ostream& out, const std::string& title = "") const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
    char marker;
  };

  int width_;
  int height_;
  std::vector<Series> series_;
  bool y_fixed_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
};

}  // namespace bdps
