// Text-table rendering for the bench binaries.
//
// Every figure bench prints the series the paper plots as an aligned text
// table (and dumps the same rows to CSV via common/csv.h).  TextTable keeps
// that formatting in one place.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace bdps {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience for streamable values.
  template <typename... Ts>
  void add_row_values(const Ts&... values) {
    std::vector<std::string> row;
    row.reserve(sizeof...(values));
    (row.push_back(format_value(values)), ...);
    add_row(std::move(row));
  }

  /// Renders with column alignment and a header rule.
  void print(std::ostream& out) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Formats a double with `digits` significant decimals (shared helper so
  /// tables and CSVs agree).
  static std::string fixed(double value, int digits = 2);

 private:
  template <typename T>
  static std::string format_value(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bdps
