#include "stats/rate_estimator.h"

namespace bdps {

void RateEstimator::observe(double size_kb, double duration_ms) {
  if (size_kb <= 0.0) return;
  samples_.add(duration_ms / size_kb);
}

LinkParams RateEstimator::estimate(const LinkParams& prior) const {
  const std::size_t n = samples_.count();
  if (n == 0) return prior;

  LinkParams measured{samples_.mean(), samples_.sample_stddev()};
  if (n >= min_samples_) return measured;

  // Linear blend toward the prior while the sample is small; avoids wild
  // early estimates (a single observation has no variance at all).
  const double w =
      static_cast<double>(n) / static_cast<double>(min_samples_);
  return LinkParams{
      w * measured.mean_ms_per_kb + (1.0 - w) * prior.mean_ms_per_kb,
      w * measured.stddev_ms_per_kb + (1.0 - w) * prior.stddev_ms_per_kb};
}

}  // namespace bdps
