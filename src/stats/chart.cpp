#include "stats/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace bdps {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@'};
}

AsciiChart::AsciiChart(int width, int height)
    : width_(std::max(width, 10)), height_(std::max(height, 4)) {}

void AsciiChart::add_series(const std::string& name,
                            std::vector<std::pair<double, double>> points) {
  Series series;
  series.name = name;
  series.points = std::move(points);
  series.marker = kMarkers[series_.size() % (sizeof(kMarkers))];
  series_.push_back(std::move(series));
}

void AsciiChart::set_y_range(double lo, double hi) {
  y_fixed_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

void AsciiChart::print(std::ostream& out, const std::string& title) const {
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = x_lo;
  double y_hi = -x_lo;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  if (!std::isfinite(x_lo)) return;  // Nothing to draw.
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_fixed_) {
    y_lo = y_lo_;
    y_hi = y_hi_;
  } else {
    const double margin = (y_hi - y_lo) * 0.05;
    y_lo -= margin;
    y_hi += margin;
    if (y_hi == y_lo) y_hi = y_lo + 1.0;
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_),
                                            ' '));
  auto plot = [&](double x, double y, char marker) {
    const int col = static_cast<int>(
        std::lround((x - x_lo) / (x_hi - x_lo) * (width_ - 1)));
    const int row = static_cast<int>(
        std::lround((y - y_lo) / (y_hi - y_lo) * (height_ - 1)));
    if (col < 0 || col >= width_ || row < 0 || row >= height_) return;
    // Row 0 is the bottom of the chart; the grid renders top-down.
    grid[static_cast<std::size_t>(height_ - 1 - row)]
        [static_cast<std::size_t>(col)] = marker;
  };
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) plot(x, y, s.marker);
  }

  if (!title.empty()) out << title << '\n';
  char label[32];
  for (int r = 0; r < height_; ++r) {
    // Y labels on the top, middle and bottom rows.
    const bool labelled = r == 0 || r == height_ - 1 || r == height_ / 2;
    if (labelled) {
      const double y =
          y_hi - (y_hi - y_lo) * static_cast<double>(r) / (height_ - 1);
      std::snprintf(label, sizeof(label), "%8.1f |", y);
    } else {
      std::snprintf(label, sizeof(label), "%8s |", "");
    }
    out << label << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << "         +";
  for (int c = 0; c < width_; ++c) out << '-';
  out << '\n';
  std::snprintf(label, sizeof(label), "%8.1f", x_lo);
  out << "         " << label;
  for (int c = 0; c < width_ - 16; ++c) out << ' ';
  std::snprintf(label, sizeof(label), "%8.1f", x_hi);
  out << label << '\n';

  out << "         ";
  for (const Series& s : series_) {
    out << s.marker << " = " << s.name << "   ";
  }
  out << '\n';
}

}  // namespace bdps
