// Welford's online mean/variance accumulator.
//
// Numerically stable single-pass moments; used by the metrics collector,
// the link-rate estimator and the multi-seed replication summaries.
#pragma once

#include <cstddef>

namespace bdps {

class Welford {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction of per-thread stats).
  void merge(const Welford& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Population variance (n denominator); 0 with fewer than 2 samples.
  double variance() const;

  /// Sample variance (n-1 denominator); 0 with fewer than 2 samples.
  double sample_variance() const;

  double stddev() const;
  double sample_stddev() const;

  /// Standard error of the mean (sample stddev / sqrt(n)).
  double standard_error() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace bdps
