// Online estimation of link transmission-rate parameters.
//
// §3.2: "Each broker estimates the parameters of the probability
// distribution of the transmission rate to each neighbor by some tools of
// network measurement."  We model that tool: every completed send
// contributes one (size, duration) observation; the estimator maintains
// the per-KB rate's mean and variance (Welford) and exposes a LinkParams
// estimate, optionally blended with a prior until enough samples arrive.
#pragma once

#include <cstddef>

#include "stats/welford.h"
#include "topology/link.h"

namespace bdps {

class RateEstimator {
 public:
  /// `min_samples`: observations required before the estimate leaves the
  /// prior entirely (below it, prior and data blend linearly).
  explicit RateEstimator(std::size_t min_samples = 8)
      : min_samples_(min_samples) {}

  /// Records one completed transfer of `size_kb` that took `duration_ms`.
  void observe(double size_kb, double duration_ms);

  std::size_t sample_count() const { return samples_.count(); }

  /// Current parameter estimate; falls back toward `prior` when few
  /// samples exist.
  LinkParams estimate(const LinkParams& prior) const;

  /// Raw per-KB rate statistics.
  const Welford& samples() const { return samples_; }

 private:
  Welford samples_;
  std::size_t min_samples_;
};

}  // namespace bdps
