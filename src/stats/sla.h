// SLA grading of a simulation run: fixed-window service-level series.
//
// A fault storm does not show up in the run's aggregate totals — a 2%
// lifetime purge fraction can hide a 40-second window where *nothing*
// met its deadline.  SlaTracker is a TraceSink that buckets the event
// stream into fixed windows and grades each one:
//
//   * deadline hit-rate   — valid deliveries / deliveries,
//   * purge fraction      — purged / (delivered + purged + lost) copies,
//   * p99 queue residence — kEnqueue -> kSendStart (or kPurge/kLoss)
//     per copy, resolved into the window of the departure instant,
//   * time-to-recover     — the span of the breach region: from the start
//     of the first degraded window to the end of the last one.
//
// It sees the identical stream from either engine (the parallel
// coordinator replays trace ops in exact sequential order), so the graded
// series is bitwise-stable across shard counts.  experiment/sweep.h wires
// it behind run_with_sla; tools/storm_report emits the per-scenario JSON.
#pragma once

#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace bdps {

/// One graded window of the run ([start, start + width)).
struct SlaWindow {
  TimeMs start = 0.0;
  TimeMs width = 0.0;
  std::size_t deliveries = 0;
  std::size_t valid_deliveries = 0;
  std::size_t purged = 0;
  std::size_t lost = 0;
  /// Copies whose queue residence ended in this window.
  std::size_t residence_samples = 0;
  /// valid / deliveries; 1.0 for a window with no deliveries (grading
  /// uses `active()` to tell silence from health).
  double hit_rate = 1.0;
  /// purged / (deliveries + purged + lost); 0.0 when nothing resolved.
  double purge_fraction = 0.0;
  TimeMs p99_residence_ms = 0.0;

  /// Whether any copy resolved (delivered, purged or lost) in the window.
  bool active() const { return deliveries + purged + lost > 0; }
};

class SlaTracker final : public TraceSink {
 public:
  /// `window_ms` is the grading resolution; storms shorter than a window
  /// blur into their neighbours.
  explicit SlaTracker(TimeMs window_ms = 10000.0);

  void record(const TraceEvent& event) override;

  /// The graded series, one entry per window from time 0 through the last
  /// recorded event (contiguous; quiet windows are present and inactive).
  std::vector<SlaWindow> series() const;

  /// Breach span of `series`: an active window is degraded when its
  /// hit-rate falls below `hit_rate_floor` or its purge fraction exceeds
  /// `purge_ceiling`.  Returns last degraded window end - first degraded
  /// window start, or 0 when no window is degraded.
  static TimeMs time_to_recover(const std::vector<SlaWindow>& series,
                                double hit_rate_floor = 0.95,
                                double purge_ceiling = 0.05);

 private:
  struct Bucket {
    std::size_t deliveries = 0;
    std::size_t valid_deliveries = 0;
    std::size_t purged = 0;
    std::size_t lost = 0;
    std::vector<TimeMs> residences;
  };

  /// Copy key for the enqueue -> departure residence pairing.  Multipath
  /// dedup guarantees at most one live copy per (message, queue) at a
  /// time, so the triple is unique among pending copies.
  struct CopyKey {
    MessageId message = -1;
    BrokerId broker = kNoBroker;
    BrokerId neighbor = kNoBroker;
    bool operator==(const CopyKey& o) const {
      return message == o.message && broker == o.broker &&
             neighbor == o.neighbor;
    }
  };
  struct CopyKeyHash {
    std::size_t operator()(const CopyKey& k) const {
      std::size_t h = std::hash<long long>()(k.message);
      h = h * 1315423911u ^ std::hash<int>()(static_cast<int>(k.broker));
      h = h * 1315423911u ^ std::hash<int>()(static_cast<int>(k.neighbor));
      return h;
    }
  };

  Bucket& bucket_at(TimeMs time);

  TimeMs window_ms_;
  std::vector<Bucket> buckets_;
  std::unordered_map<CopyKey, TimeMs, CopyKeyHash> pending_;
};

}  // namespace bdps
