#include "stats/sla.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bdps {

SlaTracker::SlaTracker(TimeMs window_ms) : window_ms_(window_ms) {
  if (!(window_ms > 0.0)) {
    throw std::invalid_argument("SlaTracker: window width must be positive");
  }
}

SlaTracker::Bucket& SlaTracker::bucket_at(TimeMs time) {
  const std::size_t index =
      static_cast<std::size_t>(std::max(0.0, time) / window_ms_);
  if (index >= buckets_.size()) buckets_.resize(index + 1);
  return buckets_[index];
}

void SlaTracker::record(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kEnqueue:
      // Latest enqueue wins: dedup admits at most one live copy per
      // (message, queue), so an overwrite means the previous copy already
      // resolved through a path we key identically.
      pending_[CopyKey{event.message, event.broker, event.neighbor}] =
          event.time;
      break;
    case TraceEventKind::kSendStart:
    case TraceEventKind::kPurge: {
      const auto it = pending_.find(
          CopyKey{event.message, event.broker, event.neighbor});
      if (it != pending_.end()) {
        Bucket& bucket = bucket_at(event.time);
        bucket.residences.push_back(event.time - it->second);
        pending_.erase(it);
      }
      if (event.kind == TraceEventKind::kPurge) {
        bucket_at(event.time).purged += 1;
      }
      break;
    }
    case TraceEventKind::kDeliver: {
      Bucket& bucket = bucket_at(event.time);
      bucket.deliveries += 1;
      if (event.valid) bucket.valid_deliveries += 1;
      break;
    }
    case TraceEventKind::kLoss: {
      Bucket& bucket = bucket_at(event.time);
      bucket.lost += 1;
      // A queued copy killed by a link failure also ends its residence.
      const auto it = pending_.find(
          CopyKey{event.message, event.broker, event.neighbor});
      if (it != pending_.end()) {
        bucket.residences.push_back(event.time - it->second);
        pending_.erase(it);
      }
      break;
    }
    default:
      break;  // kPublish / kArrival / kProcessed / kSendEnd: not graded.
  }
}

std::vector<SlaWindow> SlaTracker::series() const {
  std::vector<SlaWindow> out;
  out.reserve(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& bucket = buckets_[i];
    SlaWindow window;
    window.start = static_cast<TimeMs>(i) * window_ms_;
    window.width = window_ms_;
    window.deliveries = bucket.deliveries;
    window.valid_deliveries = bucket.valid_deliveries;
    window.purged = bucket.purged;
    window.lost = bucket.lost;
    window.residence_samples = bucket.residences.size();
    if (bucket.deliveries > 0) {
      window.hit_rate = static_cast<double>(bucket.valid_deliveries) /
                        static_cast<double>(bucket.deliveries);
    }
    const std::size_t resolved =
        bucket.deliveries + bucket.purged + bucket.lost;
    if (resolved > 0) {
      window.purge_fraction =
          static_cast<double>(bucket.purged) / static_cast<double>(resolved);
    }
    if (!bucket.residences.empty()) {
      std::vector<TimeMs> sorted = bucket.residences;
      std::sort(sorted.begin(), sorted.end());
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(sorted.size())));
      window.p99_residence_ms = sorted[rank == 0 ? 0 : rank - 1];
    }
    out.push_back(window);
  }
  return out;
}

TimeMs SlaTracker::time_to_recover(const std::vector<SlaWindow>& series,
                                   double hit_rate_floor,
                                   double purge_ceiling) {
  TimeMs first_breach = -1.0;
  TimeMs last_breach_end = -1.0;
  for (const SlaWindow& window : series) {
    if (!window.active()) continue;
    const bool degraded = window.hit_rate < hit_rate_floor ||
                          window.purge_fraction > purge_ceiling;
    if (!degraded) continue;
    if (first_breach < 0.0) first_breach = window.start;
    last_breach_end = window.start + window.width;
  }
  return first_breach < 0.0 ? 0.0 : last_breach_end - first_breach;
}

}  // namespace bdps
