// Gaussian math used by the delay model.
//
// The paper models the per-KB transmission rate of each overlay link as a
// normal random variable; the success probability of eq. (5) is then a
// normal CDF evaluation.  These helpers are the single source of truth for
// that computation across the scheduler, the purge rule and the tests.
#pragma once

namespace bdps {

/// Standard normal probability density function.
double normal_pdf(double z);

/// Standard normal cumulative distribution function, Phi(z).
double normal_cdf(double z);

/// CDF of N(mean, stddev^2) at x.  A degenerate distribution (stddev == 0)
/// collapses to a step function, which eq. (5) needs when a path has zero
/// variance (e.g. local delivery).
double normal_cdf(double x, double mean, double stddev);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-8 after one Halley refinement).  Used by tests and by the
/// confidence-interval helpers in src/stats.
double normal_quantile(double p);

/// Relative-tolerance comparison that also accepts tiny absolute error
/// around zero; shared by tests and assertions.
bool almost_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12);

}  // namespace bdps
