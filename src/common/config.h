// Tiny "key=value" configuration parser.
//
// The bench binaries accept overrides like `rate=12 seed=7 out=fig5.csv` on
// the command line so sweeps can be re-run without recompiling; this class
// is the shared argv/text parser behind that.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bdps {

class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parses `key=value` tokens from argv (skipping argv[0]).  Tokens without
  /// '=' are collected as positional arguments.
  static KeyValueConfig from_args(int argc, const char* const* argv);

  /// Parses newline-separated `key=value` text ('#' starts a comment).
  static KeyValueConfig from_text(const std::string& text);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Parses "1,2,5" style lists.
  std::vector<double> get_double_list(const std::string& key,
                                      const std::vector<double>& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  void set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bdps
