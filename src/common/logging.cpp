#include "common/logging.h"

#include <cstdio>

namespace bdps {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  const std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& message) {
  static const char* const kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::fprintf(stderr, "[bdps %s] %s\n",
               kNames[static_cast<int>(level) & 3], message.c_str());
}

}  // namespace bdps
