// Hierarchical timer wheel (Varghese & Lauck timing wheels).
//
// The reactor live runtime (runtime/reactor.h) replaces thread-per-link
// sleeping with timer-driven state machines: every processing delay and
// every in-flight transmission is one pending timer, and a worker owns
// thousands of them.  A sorted container would pay O(log n) per operation
// and scatter nodes across the heap; the wheel gives O(1) schedule and
// cancel and amortised O(1) advance, with all near-term timers in a few
// contiguous slot lists.
//
// Layout: kLevels wheels of kSlots slots each, level l covering spans of
// 64^l ticks per slot.  A timer with deadline d goes into the level where
// its distance from the current tick fits, at slot (d >> 6l) & 63; when the
// lower wheels wrap, the now-current higher slot is *cascaded* — its timers
// re-inserted by their true deadline, landing one level down (or in the due
// list when their tick has arrived).  Deadlines beyond the total span
// (64^kLevels ticks) park in the top wheel's farthest slot and re-cascade
// until they fit, so arbitrarily far futures are legal.
//
// advance(to, fire) never walks empty ticks one by one: per-level occupancy
// bitmasks give the next occupied slot's tick in O(levels) (a rotate and a
// count-trailing-zeros per wheel), and the current tick jumps straight to
// it.  Advancing over a billion empty ticks costs the same as over ten.
//
// Semantics:
//   * schedule(at, payload) with at <= current tick is legal: the timer
//     fires on the *next* advance call (even advance(current)), with its
//     original deadline reported.
//   * advance(to, fire) fires every timer whose deadline (clamped to its
//     schedule instant) is <= to, in nondecreasing order of that effective
//     tick.  Order *within* one tick is unspecified (cascading interleaves
//     insertion orders).
//   * cancel(id) is O(1) and idempotent: ids are generation-stamped, so a
//     stale id (already fired or cancelled, slot reused) returns false.
//   * fire callbacks may freely schedule() and cancel() — re-entrancy is
//     part of the contract (a completed transmission arms the next one).
//
// Not thread-safe: one wheel belongs to one reactor worker.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace bdps {

template <typename T>
class TimerWheel {
 public:
  using Tick = std::uint64_t;

  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;        // 64
  static constexpr int kLevels = 6;                    // Span 2^36 ticks.
  static constexpr Tick kSpan = Tick(1) << (kSlotBits * kLevels);

  /// Generation-stamped handle; default-constructed ids are never valid.
  struct TimerId {
    std::uint32_t index = kNoIndex;
    std::uint32_t generation = 0;
    bool valid() const { return index != kNoIndex; }
  };

  explicit TimerWheel(Tick start = 0) : current_(start) {}

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  Tick current() const { return current_; }
  std::size_t pending() const { return pending_; }

  /// Schedules `payload` to fire at tick `at` (see header semantics for
  /// past deadlines).  O(1).
  TimerId schedule(Tick at, T payload) {
    const std::int32_t idx = alloc();
    Node& node = pool_[static_cast<std::size_t>(idx)];
    node.deadline = at;
    node.payload = std::move(payload);
    place(idx);
    ++pending_;
    return TimerId{static_cast<std::uint32_t>(idx), node.generation};
  }

  /// Cancels a pending timer; false when it already fired, was already
  /// cancelled, or the id was never issued.  O(1).
  bool cancel(TimerId id) {
    if (!id.valid() || id.index >= pool_.size()) return false;
    Node& node = pool_[id.index];
    if (node.list == kFreeList || node.generation != id.generation) {
      return false;
    }
    unlink(static_cast<std::int32_t>(id.index));
    release(static_cast<std::int32_t>(id.index));
    --pending_;
    return true;
  }

  /// Earliest tick at which advance() may fire something: current() when
  /// already-due timers wait, otherwise a conservative lower bound (the
  /// next occupied slot's tick — an advance there may only cascade and
  /// yield a finer bound).  nullopt when nothing is pending.
  std::optional<Tick> next_due() const {
    if (due_.head != kNil) return current_;
    if (pending_ == 0) return std::nullopt;
    return next_event_tick();
  }

  /// Advances the wheel to tick `to`, invoking fire(deadline, payload) for
  /// every expired timer (deadline is the originally scheduled tick, which
  /// may lie in the past for late-scheduled timers).  `to` < current() is
  /// a no-op apart from draining already-due timers.
  template <typename Fire>
  void advance(Tick to, Fire&& fire) {
    fire_due(fire);
    while (current_ < to) {
      if (pending_ == 0) {
        current_ = to;
        return;
      }
      const Tick next = next_event_tick();
      if (next > to) {
        current_ = to;
        return;
      }
      current_ = next;
      // Cascade every wheel that wrapped at this tick, highest first, so
      // re-inserted timers land in slots the lower cascades then visit.
      if (current_ != 0) {
        const int wrapped = std::countr_zero(current_) / kSlotBits;
        for (int level = std::min(wrapped, kLevels - 1); level >= 1;
             --level) {
          cascade(level,
                  static_cast<int>((current_ >> (kSlotBits * level)) &
                                   (kSlots - 1)));
        }
      }
      fire_slot_zero(fire);
      fire_due(fire);
    }
  }

 private:
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
  static constexpr std::int32_t kNil = -1;
  // Node list tags: 0..kLevels*kSlots-1 are wheel slots, then:
  static constexpr std::int16_t kDueList = -2;
  static constexpr std::int16_t kFreeList = -3;

  struct Node {
    Tick deadline = 0;
    T payload{};
    std::uint32_t generation = 0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
    /// kFreeList, kDueList, or level * kSlots + slot.
    std::int16_t list = kFreeList;
  };

  struct ListHead {
    std::int32_t head = kNil;
    std::int32_t tail = kNil;
  };

  std::int32_t alloc() {
    if (free_head_ != kNil) {
      const std::int32_t idx = free_head_;
      free_head_ = pool_[static_cast<std::size_t>(idx)].next;
      return idx;
    }
    pool_.emplace_back();
    return static_cast<std::int32_t>(pool_.size() - 1);
  }

  /// Returns a node to the free list, bumping its generation so stale
  /// TimerIds can no longer address it.
  void release(std::int32_t idx) {
    Node& node = pool_[static_cast<std::size_t>(idx)];
    node.payload = T{};
    ++node.generation;
    node.list = kFreeList;
    node.prev = kNil;
    node.next = free_head_;
    free_head_ = idx;
  }

  ListHead& list_of(std::int16_t list) {
    return list == kDueList
               ? due_
               : slots_[static_cast<std::size_t>(list)];
  }

  void push_back(std::int16_t list, std::int32_t idx) {
    ListHead& l = list_of(list);
    Node& node = pool_[static_cast<std::size_t>(idx)];
    node.list = list;
    node.next = kNil;
    node.prev = l.tail;
    if (l.tail != kNil) {
      pool_[static_cast<std::size_t>(l.tail)].next = idx;
    } else {
      l.head = idx;
    }
    l.tail = idx;
    if (list >= 0) {
      occupancy_[list / kSlots] |= std::uint64_t(1) << (list % kSlots);
    }
  }

  void unlink(std::int32_t idx) {
    Node& node = pool_[static_cast<std::size_t>(idx)];
    ListHead& l = list_of(node.list);
    if (node.prev != kNil) {
      pool_[static_cast<std::size_t>(node.prev)].next = node.next;
    } else {
      l.head = node.next;
    }
    if (node.next != kNil) {
      pool_[static_cast<std::size_t>(node.next)].prev = node.prev;
    } else {
      l.tail = node.prev;
    }
    if (node.list >= 0 && l.head == kNil) {
      occupancy_[node.list / kSlots] &=
          ~(std::uint64_t(1) << (node.list % kSlots));
    }
    node.prev = node.next = kNil;
  }

  /// Files a node into the wheel position its deadline dictates *now*.
  void place(std::int32_t idx) {
    Node& node = pool_[static_cast<std::size_t>(idx)];
    if (node.deadline <= current_) {
      push_back(kDueList, idx);
      return;
    }
    const Tick delta = node.deadline - current_;
    int level;
    Tick key = node.deadline;
    if (delta >= kSpan) {
      // Beyond the horizon: park in the farthest top-level slot; each
      // cascade re-places it until the true deadline fits.
      level = kLevels - 1;
      key = current_ + kSpan - 1;
    } else {
      level = (std::bit_width(delta) - 1) / kSlotBits;
    }
    const int slot =
        static_cast<int>((key >> (kSlotBits * level)) & (kSlots - 1));
    push_back(static_cast<std::int16_t>(level * kSlots + slot), idx);
  }

  /// Empties one higher-level slot, re-filing every timer by its true
  /// deadline (one level down, the due list, or — for beyond-horizon
  /// parkers — the same slot band again).
  void cascade(int level, int slot) {
    const std::int16_t list = static_cast<std::int16_t>(level * kSlots + slot);
    std::int32_t idx = slots_[static_cast<std::size_t>(list)].head;
    slots_[static_cast<std::size_t>(list)] = ListHead{};
    occupancy_[level] &= ~(std::uint64_t(1) << slot);
    while (idx != kNil) {
      const std::int32_t next = pool_[static_cast<std::size_t>(idx)].next;
      pool_[static_cast<std::size_t>(idx)].prev = kNil;
      pool_[static_cast<std::size_t>(idx)].next = kNil;
      place(idx);  // pending_ is untouched: the timer just moves lists.
      idx = next;
    }
  }

  /// Fires and frees everything in the level-0 slot of the current tick.
  /// Callbacks may re-enter schedule()/cancel(): the node is detached and
  /// freed before `fire` runs, and no Node reference is held across it.
  template <typename Fire>
  void fire_slot_zero(Fire&& fire) {
    const std::int16_t list =
        static_cast<std::int16_t>(current_ & (kSlots - 1));
    for (;;) {
      const std::int32_t idx = slots_[static_cast<std::size_t>(list)].head;
      if (idx == kNil) break;
      unlink(idx);
      const Tick deadline = pool_[static_cast<std::size_t>(idx)].deadline;
      T payload = std::move(pool_[static_cast<std::size_t>(idx)].payload);
      release(idx);
      --pending_;
      fire(deadline, std::move(payload));
    }
  }

  template <typename Fire>
  void fire_due(Fire&& fire) {
    while (due_.head != kNil) {
      const std::int32_t idx = due_.head;
      unlink(idx);
      const Tick deadline = pool_[static_cast<std::size_t>(idx)].deadline;
      T payload = std::move(pool_[static_cast<std::size_t>(idx)].payload);
      release(idx);
      --pending_;
      fire(deadline, std::move(payload));
    }
  }

  /// Tick of the next slot that holds timers — the exact deadline for
  /// level-0 slots, the cascade instant for higher levels.  Requires at
  /// least one timer outside the due list.
  Tick next_event_tick() const {
    Tick best = ~Tick(0);
    for (int level = 0; level < kLevels; ++level) {
      const std::uint64_t occ = occupancy_[level];
      if (occ == 0) continue;
      const Tick base = current_ >> (kSlotBits * level);
      const int cur = static_cast<int>(base & (kSlots - 1));
      // Distance (1..64) to the next occupied slot strictly after `cur`
      // (a slot equal to `cur` means a full wheel turn away).
      const std::uint64_t rotated = std::rotr(occ, (cur + 1) & (kSlots - 1));
      const Tick dist = static_cast<Tick>(std::countr_zero(rotated)) + 1;
      const Tick candidate = (base + dist) << (kSlotBits * level);
      if (candidate < best) best = candidate;
    }
    assert(best != ~Tick(0));
    return best;
  }

  Tick current_ = 0;
  std::size_t pending_ = 0;
  std::vector<Node> pool_;
  std::int32_t free_head_ = kNil;
  ListHead slots_[kLevels * kSlots];
  ListHead due_;
  std::uint64_t occupancy_[kLevels] = {};
};

}  // namespace bdps
