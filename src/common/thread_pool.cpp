#include "common/thread_pool.h"

#include <algorithm>

namespace bdps {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // One task per worker draining a shared index counter: dynamic load
  // balancing like the old task-per-index version, but the queue/future
  // overhead is paid per worker, not per index — small batches (e.g. the
  // broker's per-neighbour dispatch) stay cheap.
  const std::size_t task_count = std::min(workers_.size(), count);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::vector<std::future<void>> futures;
  futures.reserve(task_count);
  for (std::size_t t = 0; t < task_count; ++t) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
    }));
  }
  for (auto& future : futures) future.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace bdps
