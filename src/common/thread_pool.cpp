#include "common/thread_pool.h"

#include <algorithm>

namespace bdps {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace bdps
