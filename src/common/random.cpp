#include "common/random.h"

#include <cmath>

namespace bdps {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 guarantees the state is never all-zero for any seed.
  for (auto& word : state_) word = splitmix64(seed);
}

Rng Rng::split() {
  // Seed the child from two outputs of the parent so that sibling streams
  // are decorrelated even for adjacent parent seeds.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  Rng child(a ^ rotl(b, 17));
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation; the rejection loop
  // removes modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::standard_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * standard_normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo) {
  if (stddev <= 0.0) return mean > lo ? mean : lo;
  // Rejection sampling is efficient when the acceptance region holds most of
  // the mass; the paper's link rates (mu in [50,100]ms, sigma = 20ms) keep
  // P(X < 0) below 0.7%, so a handful of draws almost always suffices.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo) return x;
  }
  // Far-tail fallback: exponential proposal around the boundary (Robert 1995
  // simplified); keeps the sampler total even for pathological parameters.
  const double alpha = (lo - mean) / stddev;
  for (;;) {
    const double z = alpha + exponential(1.0 / alpha);
    const double rho = std::exp(-0.5 * (z - alpha) * (z - alpha));
    if (uniform() <= rho) return mean + stddev * z;
  }
}

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::gamma(double shape, double scale) {
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k + 1) * U^(1/k).
    const double u = std::max(uniform(), 0x1.0p-53);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = standard_normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::lognormal(double log_mean, double log_stddev) {
  return std::exp(normal(log_mean, log_stddev));
}

}  // namespace bdps
