#include "common/csv.h"

namespace bdps {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc) {
  if (out_) row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (!out_) return;
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape(field);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace bdps
