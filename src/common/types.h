// Fundamental identifier and time types shared by all bdps subsystems.
//
// Simulation time is a double counting *milliseconds* since the start of the
// run.  All delay-model quantities from the paper (processing delay PD,
// per-KB transmission rates, deadlines) are expressed in the same unit so the
// scheduling math in src/scheduling needs no conversions.
#pragma once

#include <cstdint>
#include <limits>

namespace bdps {

/// Milliseconds since simulation start (or a duration in milliseconds).
using TimeMs = double;

/// Identifies a broker node in the overlay graph; dense in [0, n).
using BrokerId = std::int32_t;

/// Identifies an information publisher.
using PublisherId = std::int32_t;

/// Identifies an information subscriber; dense in [0, n_subscribers).
using SubscriberId = std::int32_t;

/// Identifies a published message; unique per simulation run.
using MessageId = std::int64_t;

/// Sentinel for "no broker" (e.g. the next hop of a locally-delivered entry).
inline constexpr BrokerId kNoBroker = -1;

/// Index of a directed edge within a Graph's edge array; dense in [0, m).
/// The canonical link address: per-link state across the simulator, broker
/// and live runtime is held in flat arrays indexed by EdgeId (see
/// topology/edge_map.h), never in maps keyed on (BrokerId, BrokerId).
using EdgeId = std::int32_t;
inline constexpr EdgeId kNoEdge = -1;

/// A directed link named both ways: by downstream neighbour and by edge id.
/// Produced wherever a neighbour id is minted (routing tables, fan-out
/// groups) so consumers can index flat per-edge state without re-resolving
/// the link.
struct LinkRef {
  BrokerId neighbor = kNoBroker;
  EdgeId edge = kNoEdge;
};

/// Sentinel for "no deadline specified".
inline constexpr TimeMs kNoDeadline = std::numeric_limits<TimeMs>::infinity();

/// Convenience conversions; the paper quotes parameters in seconds/minutes.
constexpr TimeMs seconds(double s) { return s * 1000.0; }
constexpr TimeMs minutes(double m) { return m * 60'000.0; }
constexpr TimeMs hours(double h) { return h * 3'600'000.0; }

/// One injected link failure (undirected: both directions die at `at`).
/// Consumed by the simulator's failure injection; defined here so
/// experiment configs can carry failure plans without depending on the
/// simulator headers.
struct LinkFailure {
  TimeMs at = 0.0;
  BrokerId a = kNoBroker;
  BrokerId b = kNoBroker;
};

}  // namespace bdps
