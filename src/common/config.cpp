#include "common/config.h"

#include <cstdlib>
#include <sstream>

namespace bdps {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

KeyValueConfig KeyValueConfig::from_args(int argc, const char* const* argv) {
  KeyValueConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      config.positional_.push_back(token);
    } else {
      config.set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
    }
  }
  return config;
}

KeyValueConfig KeyValueConfig::from_text(const std::string& text) {
  KeyValueConfig config;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      config.positional_.push_back(line);
    } else {
      config.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
  }
  return config;
}

bool KeyValueConfig::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string KeyValueConfig::get_string(const std::string& key,
                                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double KeyValueConfig::get_double(const std::string& key,
                                  double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end == it->second.c_str()) ? fallback : value;
}

int KeyValueConfig::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  return (end == it->second.c_str()) ? fallback : static_cast<int>(value);
}

bool KeyValueConfig::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

std::vector<double> KeyValueConfig::get_double_list(
    const std::string& key, const std::vector<double>& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<double> result;
  std::istringstream in(it->second);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (trim(item).empty()) continue;
    result.push_back(std::strtod(item.c_str(), nullptr));
  }
  return result.empty() ? fallback : result;
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace bdps
