// Lightweight leveled logger.
//
// The simulator is a library first; logging defaults to warnings-only so
// tests and benches stay quiet, while examples can turn on INFO/DEBUG to
// narrate broker behaviour.  Thread-safe: the live runtime logs from many
// broker threads.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace bdps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logger configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Writes one line (used by the BDPS_LOG macro; prefer the macro).
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
/// Builds a log line in a local stream, then hands it to the logger whole so
/// concurrent writers never interleave within a line.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace bdps

#define BDPS_LOG(severity)                                          \
  if (static_cast<int>(severity) <                                  \
      static_cast<int>(::bdps::Logger::instance().level())) {       \
  } else                                                            \
    ::bdps::detail::LogLine(severity)

#define BDPS_DEBUG BDPS_LOG(::bdps::LogLevel::kDebug)
#define BDPS_INFO BDPS_LOG(::bdps::LogLevel::kInfo)
#define BDPS_WARN BDPS_LOG(::bdps::LogLevel::kWarn)
#define BDPS_ERROR BDPS_LOG(::bdps::LogLevel::kError)
