// Fixed-size worker pool for running independent simulations in parallel.
//
// The experiment sweeps (src/experiment/sweep.h) fan whole simulator runs —
// one per (strategy, publishing rate, seed) triple — across the pool.  Each
// simulation owns its RNG streams and collectors, so tasks share nothing and
// the pool needs no more machinery than a locked queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bdps {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Schedules a callable; the returned future yields its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Applies `fn` to every index in [0, count) across the pool and blocks
  /// until all complete.  Indices are claimed dynamically by at most
  /// thread_count() worker tasks; the first exception observed is
  /// rethrown after every index has been attempted.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace bdps
