// Minimal CSV writer used by the benchmark harnesses to dump figure series
// next to the human-readable tables they print.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bdps {

/// Streams rows into a CSV file.  Fields containing separators, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the output file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Appends one row; the field count should match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    row(fields);
  }

 private:
  template <typename T>
  static std::string to_field(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(const std::string& field);

  std::ofstream out_;
};

}  // namespace bdps
