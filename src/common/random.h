// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible from a single 64-bit seed: every
// experiment row in EXPERIMENTS.md can be regenerated bit-for-bit.  We use
// xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64, which is both faster and of higher quality than std::mt19937
// and — unlike the standard distributions — has a fully specified output
// sequence across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace bdps {

/// splitmix64 step; used for seeding and for cheap hash-like id mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine with distribution helpers.
///
/// All distribution draws consume a deterministic number of engine outputs,
/// except `normal()` (polar method, rejection) and `truncated_normal()`.
class Rng {
 public:
  /// Seeds the four 64-bit words of state via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent stream; used to give each simulation component
  /// (workload, links, ...) its own generator so adding draws to one
  /// component does not perturb another.
  Rng split();

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via the Marsaglia polar method.
  double standard_normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal conditioned on the result being >= lo (rejection with an
  /// analytic fallback for far-tail truncation).
  double truncated_normal(double mean, double stddev, double lo);

  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// publishing process).
  double exponential(double mean);

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang squeeze (k >= 1) with
  /// the standard boost for k < 1.
  double gamma(double shape, double scale);

  /// Lognormal with the given *log-space* parameters.
  double lognormal(double log_mean, double log_stddev);

  /// Fisher–Yates shuffle of an index container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const auto j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second output of the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bdps
