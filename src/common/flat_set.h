// Open-addressing hash set for non-negative 64-bit ids.
//
// The simulator's duplicate-arrival filter keeps one set of MessageIds per
// broker; a std::set pays an allocation plus an O(log n) red-black walk per
// arrival.  Ids are dense-ish non-negative integers, so a linear-probing
// table with a mixed hash and -1 as the empty sentinel does the same job in
// one or two contiguous probes and no per-insert allocation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bdps {

/// Flat hash set of non-negative std::int64_t ids (MessageId et al.).
class FlatIdSet {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Inserts `id` (must be >= 0); false when it was already present.
  bool insert(std::int64_t id) {
    assert(id >= 0);
    if (slots_.empty() || size_ * 8 >= slots_.size() * 7) grow();
    std::size_t probe = mix(id) & mask_;
    while (slots_[probe] != kEmpty) {
      if (slots_[probe] == id) return false;
      probe = (probe + 1) & mask_;
    }
    slots_[probe] = id;
    ++size_;
    return true;
  }

  bool contains(std::int64_t id) const {
    assert(id >= 0);
    if (slots_.empty()) return false;
    std::size_t probe = mix(id) & mask_;
    while (slots_[probe] != kEmpty) {
      if (slots_[probe] == id) return true;
      probe = (probe + 1) & mask_;
    }
    return false;
  }

  /// Removes `id`; false when it was not present.  Uses backward-shift
  /// deletion (no tombstones): every element in the probe cluster after the
  /// hole is re-slotted so lookups stay two-probe cheap under churn.
  bool erase(std::int64_t id) {
    assert(id >= 0);
    if (slots_.empty()) return false;
    std::size_t probe = mix(id) & mask_;
    while (slots_[probe] != id) {
      if (slots_[probe] == kEmpty) return false;
      probe = (probe + 1) & mask_;
    }
    std::size_t hole = probe;
    std::size_t next = (hole + 1) & mask_;
    while (slots_[next] != kEmpty) {
      const std::size_t home = mix(slots_[next]) & mask_;
      // Shift back only if `next`'s home position lies outside the cyclic
      // range (hole, next]; otherwise the element is already reachable.
      const bool reachable_past_hole =
          ((next - home) & mask_) >= ((next - hole) & mask_);
      if (reachable_past_hole) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask_;
    }
    slots_[hole] = kEmpty;
    --size_;
    return true;
  }

  void clear() {
    slots_.assign(slots_.size(), kEmpty);
    size_ = 0;
  }

 private:
  static constexpr std::int64_t kEmpty = -1;

  /// splitmix64 finalizer: spreads sequential ids across the table.
  static std::size_t mix(std::int64_t id) {
    auto x = static_cast<std::uint64_t>(id);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  void grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<std::int64_t> old = std::move(slots_);
    slots_.assign(capacity, kEmpty);
    mask_ = capacity - 1;
    for (const std::int64_t id : old) {
      if (id == kEmpty) continue;
      std::size_t probe = mix(id) & mask_;
      while (slots_[probe] != kEmpty) probe = (probe + 1) & mask_;
      slots_[probe] = id;
    }
  }

  std::vector<std::int64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace bdps
