// Reusable rendezvous barrier for lock-step rounds.
//
// The sharded simulator (sim/parallel/) advances all shard lanes in
// conservative time windows: every round the coordinator publishes a safe
// horizon, all workers process their lane up to it, and the coordinator
// merges the results — two rendezvous per round.  Windows are short
// (often well under a millisecond of wall time), so the barrier spins
// briefly before parking on the generation word with C++20 atomic wait
// (futex on Linux); a condition_variable would pay a syscall per round.
//
// arrive_and_wait() is a full synchronisation point: writes made by any
// participant before arriving are visible to every participant after the
// call returns (acquire/release on the generation and arrival words).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace bdps {

class WindowBarrier {
 public:
  explicit WindowBarrier(std::size_t participants)
      : participants_(participants) {}

  WindowBarrier(const WindowBarrier&) = delete;
  WindowBarrier& operator=(const WindowBarrier&) = delete;

  /// Blocks until all `participants` threads have arrived, then releases
  /// them together.  Immediately reusable for the next round.
  void arrive_and_wait() {
    const std::uint64_t generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      // Last arrival: reset the count for the next round and open the gate.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      generation_.notify_all();
      return;
    }
    // Short spin first: rounds are usually shorter than a futex round-trip.
    for (int spin = 0; spin < 1024; ++spin) {
      if (generation_.load(std::memory_order_acquire) != generation) return;
    }
    std::this_thread::yield();
    while (generation_.load(std::memory_order_acquire) == generation) {
      generation_.wait(generation, std::memory_order_acquire);
    }
  }

  std::size_t participants() const { return participants_; }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace bdps
