// Wait-free single-producer / single-consumer queue.
//
// The sharded simulator (sim/parallel/) routes cross-shard events through
// one mailbox per (source shard, destination shard) pair: exactly one
// worker thread pushes and exactly one thread drains, so the queue needs no
// locks — a singly-linked list with a stub node where the producer only
// touches the tail and the consumer only touches the head (Vyukov's
// unbounded SPSC design).  The only shared word is each node's `next`
// pointer, published with release and read with acquire, so the value
// written before a push is visible to the pop that observes the node.
//
// Contract: at most one thread calls push() at a time and at most one
// thread calls pop()/drain()/empty() at a time (they may be different
// threads, concurrently).  Which thread plays which role may change over
// the queue's life only across an external synchronisation point (the
// parallel engine hands roles over at window barriers).
#pragma once

#include <atomic>
#include <utility>
#include <vector>

namespace bdps {

template <typename T>
class SpscQueue {
 public:
  SpscQueue() : head_(new Node), tail_(head_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Moves are for container setup only — never while any thread is
  /// pushing or popping.
  SpscQueue(SpscQueue&& other) noexcept
      : head_(other.head_), tail_(other.tail_) {
    other.head_ = new Node;
    other.tail_ = other.head_;
  }
  SpscQueue& operator=(SpscQueue&&) = delete;

  ~SpscQueue() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  /// Producer side.  Appends one value; never blocks.
  void push(T value) {
    Node* node = new Node;
    node->value = std::move(value);
    // tail_ is producer-private; the release store on next publishes the
    // node (and its value) to the consumer.
    tail_->next.store(node, std::memory_order_release);
    tail_ = node;
  }

  /// Consumer side.  Pops the oldest value into `out`; false when empty.
  bool pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    Node* old = head_;
    head_ = next;
    delete old;
    return true;
  }

  /// Consumer side.  Appends every queued value to `out` in push order.
  void drain(std::vector<T>& out) {
    T value;
    while (pop(value)) out.push_back(std::move(value));
  }

  /// Consumer side.  May race with a concurrent push (a false "empty" for
  /// an element mid-publication is inherent to SPSC).
  bool empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* head_;  // Consumer-owned stub; head_->next is the oldest element.
  Node* tail_;  // Producer-owned last node.
};

}  // namespace bdps
