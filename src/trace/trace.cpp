#include "trace/trace.h"

namespace bdps {

std::string trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPublish:
      return "publish";
    case TraceEventKind::kArrival:
      return "arrival";
    case TraceEventKind::kProcessed:
      return "processed";
    case TraceEventKind::kEnqueue:
      return "enqueue";
    case TraceEventKind::kSendStart:
      return "send_start";
    case TraceEventKind::kSendEnd:
      return "send_end";
    case TraceEventKind::kDeliver:
      return "deliver";
    case TraceEventKind::kPurge:
      return "purge";
    case TraceEventKind::kLoss:
      return "loss";
  }
  return "?";
}

CsvTraceSink::CsvTraceSink(const std::string& path)
    : csv_(path, {"time_ms", "event", "message", "broker", "neighbor",
                  "subscriber", "valid"}) {}

void CsvTraceSink::record(const TraceEvent& event) {
  csv_.row_values(event.time, trace_event_kind_name(event.kind),
                  event.message, event.broker, event.neighbor,
                  event.subscriber, event.valid ? 1 : 0);
}

}  // namespace bdps
