#include "trace/analysis.h"

#include <tuple>

namespace bdps {

TraceAnalysis analyze_trace(const MemoryTrace& trace) {
  TraceAnalysis analysis;

  // Publish times for latency computation.
  std::map<MessageId, TimeMs> publish_time;
  // Pending queue entries: (message, broker, neighbor) -> enqueue time.
  // A copy is enqueued at most once per (broker, neighbor) under
  // single-path routing; multi-path re-sends are keyed identically and the
  // overwrite-on-enqueue behaviour keeps the later attempt.
  using HopKey = std::tuple<MessageId, BrokerId, BrokerId>;
  std::map<HopKey, TimeMs> enqueued;
  std::map<HopKey, TimeMs> send_started;

  for (const TraceEvent& event : trace.events()) {
    const HopKey key{event.message, event.broker, event.neighbor};
    switch (event.kind) {
      case TraceEventKind::kPublish:
        publish_time[event.message] = event.time;
        ++analysis.published;
        break;
      case TraceEventKind::kEnqueue:
        enqueued[key] = event.time;
        break;
      case TraceEventKind::kSendStart:
        send_started[key] = event.time;
        break;
      case TraceEventKind::kSendEnd: {
        HopRecord hop;
        hop.message = event.message;
        hop.broker = event.broker;
        hop.neighbor = event.neighbor;
        const auto started = send_started.find(key);
        if (started != send_started.end()) {
          hop.transmission = event.time - started->second;
          const auto queued = enqueued.find(key);
          if (queued != enqueued.end()) {
            hop.queueing = started->second - queued->second;
          }
        }
        analysis.queueing.add(hop.queueing);
        analysis.transmission.add(hop.transmission);
        analysis.hops.push_back(hop);
        break;
      }
      case TraceEventKind::kDeliver: {
        ++analysis.deliveries;
        const auto published = publish_time.find(event.message);
        const TimeMs latency = published != publish_time.end()
                                   ? event.time - published->second
                                   : 0.0;
        if (event.valid) {
          ++analysis.valid_deliveries;
          analysis.valid_latency.add(latency);
        } else {
          analysis.late_latency.add(latency);
        }
        break;
      }
      case TraceEventKind::kPurge:
        ++analysis.purged_copies;
        break;
      case TraceEventKind::kLoss:
        ++analysis.lost_copies;
        break;
      case TraceEventKind::kArrival:
      case TraceEventKind::kProcessed:
        break;
    }
  }
  return analysis;
}

}  // namespace bdps
