// Trace analysis: where does the delay budget actually go?
//
// The paper's delay model decomposes end-to-end delay into processing,
// scheduling (queueing) and propagation components (§3.2).  The analyzer
// reconstructs exactly that decomposition from a MemoryTrace:
//   * per (message, broker, neighbor) hop: queueing = send_start - enqueue,
//     transmission = send_end - send_start;
//   * per delivery: total latency from publish to hand-off;
//   * message fates: delivered / purged / lost / stranded.
#pragma once

#include <cstddef>
#include <map>

#include "stats/welford.h"
#include "trace/trace.h"

namespace bdps {

struct HopRecord {
  MessageId message = -1;
  BrokerId broker = kNoBroker;
  BrokerId neighbor = kNoBroker;
  TimeMs queueing = 0.0;
  TimeMs transmission = 0.0;
};

struct TraceAnalysis {
  /// One record per completed hop (send that finished).
  std::vector<HopRecord> hops;
  /// Distribution of queueing delays across completed hops.
  Welford queueing;
  /// Distribution of transmission times across completed hops.
  Welford transmission;
  /// Delivery latency distribution (valid deliveries only).
  Welford valid_latency;
  /// Delivery latency distribution (late deliveries).
  Welford late_latency;

  std::size_t published = 0;
  std::size_t deliveries = 0;
  std::size_t valid_deliveries = 0;
  std::size_t purged_copies = 0;
  std::size_t lost_copies = 0;

  /// Mean queueing share of (queueing + transmission) per hop, in [0, 1];
  /// the congestion signature the scheduling strategies act on.
  double queueing_share() const {
    const double q = queueing.mean() * static_cast<double>(queueing.count());
    const double t = transmission.mean() *
                     static_cast<double>(transmission.count());
    return (q + t) > 0.0 ? q / (q + t) : 0.0;
  }
};

/// Scans a recorded trace once and builds the decomposition above.
TraceAnalysis analyze_trace(const MemoryTrace& trace);

}  // namespace bdps
