// Event tracing for the simulator.
//
// A TraceSink attached to a Simulator receives one TraceEvent per
// interesting transition (publish, hop arrival, queue enqueue, send start/
// end, delivery, purge, loss).  The in-memory sink feeds the analyzer in
// trace/analysis.h — per-hop queueing/transmission breakdowns that the
// aggregate Collector cannot provide — and the CSV sink writes journeys to
// disk for external tooling.
#pragma once

#include <string>
#include <vector>

#include "common/csv.h"
#include "common/types.h"

namespace bdps {

enum class TraceEventKind {
  kPublish,    // Message injected (broker = publisher edge).
  kArrival,    // Message received by broker.
  kProcessed,  // Processing stage done at broker.
  kEnqueue,    // Copy queued at broker toward neighbor.
  kSendStart,  // Copy picked; transmission broker -> neighbor begins.
  kSendEnd,    // Transmission finished (arrival at neighbor).
  kDeliver,    // Handed to local subscriber (valid flags deadline met).
  kPurge,      // Copy deleted by eq. 11 / expiry at broker.
  kLoss,       // Copy destroyed by link failure.
};

std::string trace_event_kind_name(TraceEventKind kind);

struct TraceEvent {
  TimeMs time = 0.0;
  TraceEventKind kind = TraceEventKind::kPublish;
  MessageId message = -1;
  BrokerId broker = kNoBroker;
  BrokerId neighbor = kNoBroker;      // kEnqueue / kSendStart / kSendEnd.
  SubscriberId subscriber = -1;       // kDeliver only.
  bool valid = false;                 // kDeliver only.
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Buffers every event in memory (analysis, tests).
class MemoryTrace final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams events to a CSV file (one row per event).
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);
  void record(const TraceEvent& event) override;
  bool ok() const { return csv_.ok(); }

 private:
  CsvWriter csv_;
};

}  // namespace bdps
