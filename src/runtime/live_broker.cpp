#include "runtime/live_broker.h"

#include <thread>

namespace bdps {

void LiveClock::sleep_for(TimeMs sim_ms) const {
  if (sim_ms <= 0.0) return;
  const double real_ms = sim_ms / speedup_;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(real_ms));
}

void LiveStats::on_purge(const PurgeStats& stats) {
  purged_.fetch_add(stats.expired + stats.hopeless,
                    std::memory_order_relaxed);
}

void LiveStats::on_delivery(const LiveDelivery& delivery) {
  const std::lock_guard<std::mutex> lock(mutex_);
  deliveries_.push_back(delivery);
}

std::vector<LiveDelivery> LiveStats::deliveries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return deliveries_;
}

std::size_t LiveStats::valid_deliveries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& d : deliveries_) count += d.valid ? 1 : 0;
  return count;
}

double LiveStats::earning() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& d : deliveries_) {
    if (d.valid) total += d.price;
  }
  return total;
}

}  // namespace bdps
