// Closable MPMC blocking channel used by the live runtime's broker threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace bdps {

template <typename T>
class Channel {
 public:
  /// Pushes an item; returns false when the channel is already closed.
  bool push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until at least one item is queued, then drains *everything* in
  /// one lock acquisition (the deque is swapped out, not popped item by
  /// item).  An empty result means closed and drained — same termination
  /// contract as pop().  Batch consumers (the legacy receiver loop) use
  /// this to pay one lock round-trip per burst instead of per message.
  std::deque<T> pop_all() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    std::deque<T> out;
    out.swap(items_);
    return out;
  }

  /// Non-blocking batched drain into a caller-owned vector (appended in
  /// FIFO order, capacity reused); false when nothing was queued.  The
  /// reactor polls its injector with this every loop iteration, so the
  /// empty case must not allocate.
  bool try_drain(std::vector<T>& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    return true;
  }

  /// Non-blocking variant; nullopt when empty (even if open).
  std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bdps
