#include "runtime/reactor.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "broker/output_queue.h"
#include "common/spsc_queue.h"
#include "common/timer_wheel.h"
#include "runtime/channel.h"
#include "scheduling/kernel.h"
#include "sim/parallel/shard_plan.h"

namespace bdps {

namespace {

/// Park caps: a worker never sleeps past these even without a wake, so a
/// missed edge case degrades to a poll instead of a hang; the stop cap
/// keeps shutdown prompt while outstanding work drains.
constexpr std::chrono::milliseconds kMaxPark{50};
constexpr std::chrono::milliseconds kStopPark{2};

}  // namespace

/// One message crossing a worker boundary (mailbox / injector element).
struct Reactor::Inbound {
  BrokerId to = kNoBroker;
  std::shared_ptr<const Message> message;
};

/// Timer-wheel payload: which state machine fires.
struct Reactor::TimerEvent {
  std::uint32_t index = 0;  // BrokerId (rx) or links_ index (tx).
  bool tx = false;
};

/// Broker Rx state machine + per-broker scratch.  Touched only by the
/// owning worker, so none of it is synchronised.
struct Reactor::BrokerState {
  std::deque<std::shared_ptr<const Message>> input;
  bool processing = false;  // A PD timer is pending for input.front().
  /// The pending PD timer, so a crash can cancel it with the queue.
  TimerWheel<TimerEvent>::TimerId rx_timer;
  /// Crashed: queues were wiped, arrivals are lost until restart.
  bool down = false;
  FanOutGrouper grouper;
  std::vector<const SubscriptionEntry*> matched;
  // Running totals behind the eq. (6) average message size; worker-local
  // because every outgoing link of this broker lives on the same worker.
  double size_kb_total = 0.0;
  std::size_t size_count = 0;
};

/// Link Tx state machine: the simulator's OutputQueue engine driven by
/// timer callbacks instead of a dedicated sender thread.
struct Reactor::LinkState {
  BrokerId from;
  BrokerId to;
  EdgeId edge;
  LinkModel true_link;
  Rng rng;  // The link's per-EdgeId stream.
  OutputQueue out;
  /// The full queued record rides along during transmission so a link-down
  /// can cancel the timer and put the copy *back* (targets and folded
  /// scores intact) instead of losing it.
  QueuedMessage in_flight;
  TimerWheel<TimerEvent>::TimerId tx_timer;
  bool busy = false;  // A tx timer is pending for in_flight.
  /// Fault churn: while down the queue holds (no picks, no new timer);
  /// link-up re-arms.  Flipped only on the owning worker.
  bool down = false;

  LinkState(const LiveLinkSpec& spec, const Strategy* strategy)
      : from(spec.from),
        to(spec.to),
        edge(spec.edge),
        true_link(spec.params),
        rng(spec.rng),
        out(spec.to, spec.edge, spec.params, strategy) {}
};

struct Reactor::Worker {
  std::size_t id = 0;
  TimerWheel<TimerEvent> wheel;
  /// One SPSC mailbox per *source* worker (nullptr for self): exactly one
  /// pusher, exactly one drainer — the wait-free cross-worker path.
  std::vector<std::unique_ptr<SpscQueue<Inbound>>> inbound;
  /// External entry point (publish arrives from arbitrary user threads).
  Channel<Inbound> injector;
  /// Link and broker up/down transitions from set_link_state /
  /// set_broker_state (arbitrary threads); applied by the owning worker
  /// between drains.  Low traffic, so a plain mutex-guarded vector
  /// suffices.
  std::mutex command_mutex;
  std::vector<Command> commands;
  /// Wake protocol: producers bump `epoch` *after* pushing, then notify;
  /// the worker snapshots it before draining and parks only while it is
  /// unchanged — either side losing the race still observes the other.
  std::atomic<std::uint64_t> epoch{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  std::vector<Inbound> drain_scratch;
  /// Worker-owned matching scratch: with the sharded engine, every worker
  /// matches lock-free against any broker it owns through one epoch slot
  /// (instead of one slot per broker).
  matching::MatchScratch match_scratch;
};

Reactor::Reactor(const Topology* topology, const RoutingFabric* fabric,
                 const Strategy* strategy, ReactorOptions options,
                 LiveClock* clock, LiveStats* stats,
                 std::atomic<std::size_t>* outstanding,
                 std::vector<LiveLinkSpec> links,
                 const std::vector<std::vector<LinkRef>>* out_links)
    : topology_(topology),
      fabric_(fabric),
      strategy_(strategy),
      options_(options),
      clock_(clock),
      stats_(stats),
      outstanding_(outstanding) {
  if (!(options_.wheel_tick_ms > 0.0)) {  // Also rejects NaN.
    throw std::invalid_argument("reactor: wheel_tick_ms must be > 0");
  }
  const std::size_t n = topology_->graph.broker_count();
  brokers_.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    brokers_.push_back(std::make_unique<BrokerState>());
    brokers_[b]->grouper.bind((*out_links)[b]);
  }

  link_by_edge_.assign(topology_->graph.edge_count(), -1);
  links_of_broker_.resize(n);
  links_.reserve(links.size());
  for (LiveLinkSpec& spec : links) {
    link_by_edge_[spec.edge] = static_cast<std::int32_t>(links_.size());
    links_of_broker_[spec.from].push_back(
        static_cast<std::uint32_t>(links_.size()));
    links_.push_back(std::make_unique<LinkState>(spec, strategy_));
  }

  std::size_t worker_count =
      options_.workers != 0
          ? options_.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  worker_count = std::clamp<std::size_t>(worker_count, 1, std::max<std::size_t>(1, n));

  // The sharded engine's partitioner keeps most fan-outs worker-local;
  // links follow their source broker, so one edge cut is one mailbox hop.
  const ShardPlan plan =
      ShardPlan::greedy_edge_cut(topology_->graph, worker_count);
  owner_of_broker_.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    owner_of_broker_[b] = plan.shard_of(static_cast<BrokerId>(b));
  }

  workers_.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->id = w;
    worker->inbound.resize(worker_count);
    for (std::size_t src = 0; src < worker_count; ++src) {
      if (src != w) worker->inbound[src] = std::make_unique<SpscQueue<Inbound>>();
    }
    workers_.push_back(std::move(worker));
  }
}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  if (started_) return;
  started_ = true;
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

bool Reactor::publish(BrokerId target,
                      std::shared_ptr<const Message> message) {
  Worker& worker = *workers_[owner_of_broker_[target]];
  if (!worker.injector.push(Inbound{target, std::move(message)})) {
    return false;
  }
  wake(worker);
  return true;
}

void Reactor::stop() {
  if (stopping_.exchange(true)) {
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
    return;
  }
  for (auto& worker : workers_) worker->injector.close();
  for (auto& worker : workers_) wake(*worker);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void Reactor::set_link_state(EdgeId edge, bool up) {
  if (static_cast<std::size_t>(edge) >= link_by_edge_.size()) return;
  const std::int32_t index = link_by_edge_[edge];
  if (index < 0) return;  // No subscription routes over this link.
  Worker& worker = *workers_[owner_of_broker_[links_[index]->from]];
  {
    const std::lock_guard<std::mutex> lock(worker.command_mutex);
    worker.commands.push_back(Command{Command::Kind::kLink,
                                      static_cast<std::uint32_t>(index), up});
  }
  wake(worker);
}

void Reactor::set_broker_state(BrokerId broker, bool up) {
  if (static_cast<std::size_t>(broker) >= brokers_.size()) return;
  Worker& worker = *workers_[owner_of_broker_[broker]];
  {
    const std::lock_guard<std::mutex> lock(worker.command_mutex);
    worker.commands.push_back(Command{Command::Kind::kBroker,
                                      static_cast<std::uint32_t>(broker), up});
  }
  wake(worker);
}

void Reactor::apply_commands(Worker& worker) {
  std::vector<Command> batch;
  {
    const std::lock_guard<std::mutex> lock(worker.command_mutex);
    if (worker.commands.empty()) return;
    batch.swap(worker.commands);
  }
  for (const Command& command : batch) {
    if (command.kind == Command::Kind::kBroker) {
      apply_broker_command(worker, static_cast<BrokerId>(command.index),
                           command.up);
      continue;
    }
    LinkState& link = *links_[command.index];
    if (!command.up) {
      link.down = true;
      if (link.busy) {
        // Tear down the Tx machine: the wheel timer is cancelled and the
        // copy goes back into the queue with its targets and folded
        // scores — it competes again at the next link-free pick.
        worker.wheel.cancel(link.tx_timer);
        link.busy = false;
        link.out.enqueue(std::move(link.in_flight));
        link.in_flight = QueuedMessage{};
      }
    } else {
      link.down = false;
      if (!link.busy && !link.out.empty()) {
        start_transmission(worker, command.index);
      }
    }
  }
}

void Reactor::apply_broker_command(Worker& worker, BrokerId broker, bool up) {
  BrokerState& state = *brokers_[broker];
  if (up) {
    state.down = false;  // Queues are empty; nothing to restart.
    return;
  }
  if (state.down) return;
  state.down = true;
  // The simulator's crash semantics: every copy the broker holds — queued
  // input, the message being processed, every outgoing OutputQueue and any
  // transmission already on the wire — dies with it.
  std::size_t lost = state.input.size();
  state.input.clear();
  if (state.processing) {
    worker.wheel.cancel(state.rx_timer);
    state.processing = false;
  }
  for (const std::uint32_t link_index : links_of_broker_[broker]) {
    LinkState& link = *links_[link_index];
    if (link.busy) {
      worker.wheel.cancel(link.tx_timer);
      link.busy = false;
      link.in_flight = QueuedMessage{};
      ++lost;
    }
    lost += link.out.clear();
  }
  if (lost > 0) {
    stats_->on_loss(lost);
    outstanding_->fetch_sub(lost, std::memory_order_release);
  }
}

std::uint64_t Reactor::tick_ceil(TimeMs at) const {
  if (at <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::ceil(at / options_.wheel_tick_ms));
}

void Reactor::worker_loop(Worker& worker) {
  for (;;) {
    const std::uint64_t epoch =
        worker.epoch.load(std::memory_order_acquire);
    apply_commands(worker);
    drain_inbound(worker);
    advance_wheel(worker);
    // Exit order matters: the injector must be observed *closed* before
    // outstanding is read.  A publish that won the push-before-close race
    // incremented the counter before pushing, and both precede the close
    // this thread just observed (channel-mutex order), so outstanding
    // reads >= 1 here and the next drain picks the message up — no copy
    // can strand in a dead worker's injector.  Cross-worker mailboxes
    // need no check: a future push implies an in-flight copy that keeps
    // outstanding nonzero the whole time.
    if (stopping_.load(std::memory_order_acquire) &&
        worker.injector.closed() &&
        outstanding_->load(std::memory_order_acquire) == 0) {
      return;
    }
    park(worker, epoch);
  }
}

void Reactor::drain_inbound(Worker& worker) {
  auto& batch = worker.drain_scratch;
  batch.clear();
  for (auto& mailbox : worker.inbound) {
    if (mailbox) mailbox->drain(batch);
  }
  // try_drain reuses the scratch vector: the empty-injector poll (the
  // common case every loop iteration) costs one lock, no allocation.
  worker.injector.try_drain(batch);
  for (Inbound& in : batch) {
    deposit(worker, in.to, std::move(in.message));
  }
  batch.clear();
}

void Reactor::advance_wheel(Worker& worker) {
  const std::uint64_t now_tick = static_cast<std::uint64_t>(
      std::max(0.0, clock_->now()) / options_.wheel_tick_ms);
  worker.wheel.advance(now_tick,
                       [this, &worker](std::uint64_t, TimerEvent event) {
                         if (event.tx) {
                           on_tx_done(worker, event.index);
                         } else {
                           on_rx_done(worker,
                                      static_cast<BrokerId>(event.index));
                         }
                       });
}

void Reactor::park(Worker& worker, std::uint64_t epoch_snapshot) {
  const bool stopping = stopping_.load(std::memory_order_acquire);
  auto deadline = std::chrono::steady_clock::now() +
                  (stopping ? kStopPark : kMaxPark);
  if (const auto next = worker.wheel.next_due()) {
    deadline = std::min(
        deadline, clock_->real_time_at(static_cast<TimeMs>(*next) *
                                       options_.wheel_tick_ms));
  }
  std::unique_lock<std::mutex> lock(worker.mutex);
  worker.cv.wait_until(lock, deadline, [&] {
    return worker.epoch.load(std::memory_order_acquire) != epoch_snapshot;
  });
}

void Reactor::wake(Worker& worker) {
  worker.epoch.fetch_add(1, std::memory_order_release);
  // The empty critical section orders this notify after any in-progress
  // park decision: either the worker sees the new epoch before waiting, or
  // it is already parked and the notify lands.
  { const std::lock_guard<std::mutex> lock(worker.mutex); }
  worker.cv.notify_one();
}

void Reactor::deposit(Worker& worker, BrokerId broker,
                      std::shared_ptr<const Message> message) {
  BrokerState& state = *brokers_[broker];
  if (state.down) {  // Arrival at a crashed broker: the copy is lost.
    stats_->on_loss(1);
    outstanding_->fetch_sub(1, std::memory_order_release);
    return;
  }
  state.input.push_back(std::move(message));
  if (!state.processing) {
    state.processing = true;
    schedule_rx(worker, broker);
  }
}

void Reactor::schedule_rx(Worker& worker, BrokerId broker) {
  brokers_[broker]->rx_timer = worker.wheel.schedule(
      tick_ceil(clock_->now() + options_.processing_delay),
      TimerEvent{static_cast<std::uint32_t>(broker), /*tx=*/false});
}

void Reactor::on_rx_done(Worker& worker, BrokerId broker) {
  BrokerState& state = *brokers_[broker];
  std::shared_ptr<const Message> message = std::move(state.input.front());
  state.input.pop_front();

  stats_->on_reception();
  const TimeMs now = clock_->now();
  state.size_kb_total += message->size_kb();
  ++state.size_count;

  // Same admission pipeline as the legacy receiver and the simulator
  // broker: match scratch + sorted-slot fan-out grouping, kernel rows
  // folded here so pick/purge callbacks never touch the table.
  fabric_->match_at(broker, *message, worker.match_scratch, state.matched);
  state.grouper.group(state.matched, *message);

  for (const SubscriptionEntry* entry : state.grouper.local()) {
    const TimeMs delay = message->elapsed(now);
    const TimeMs deadline = entry->effective_deadline(*message);
    stats_->on_delivery(LiveDelivery{entry->subscription->subscriber,
                                     message->id(), delay, delay <= deadline,
                                     entry->subscription->price});
  }

  for (FanOutGroup& group : state.grouper.groups()) {
    if (group.targets.empty()) continue;
    const std::int32_t link_index = link_by_edge_[group.edge];
    LinkState& link = *links_[link_index];
    QueuedMessage queued{message, now, std::move(group.targets)};
    group.targets = {};  // Moved-from: reset to a clean empty slot.
    precompute_scores(queued, options_.processing_delay);
    outstanding_->fetch_add(1);
    link.out.enqueue(std::move(queued));
    if (!link.busy) {
      start_transmission(worker, static_cast<std::uint32_t>(link_index));
    }
  }

  outstanding_->fetch_sub(1, std::memory_order_release);

  if (!state.input.empty()) {
    schedule_rx(worker, broker);
  } else {
    state.processing = false;
  }
}

void Reactor::start_transmission(Worker& worker, std::uint32_t link_index) {
  LinkState& link = *links_[link_index];
  if (link.down) {  // Held: the queue keeps its copies until link-up.
    link.busy = false;
    return;
  }
  const BrokerState& from = *brokers_[link.from];
  const double average_kb =
      from.size_count == 0
          ? 0.0
          : from.size_kb_total / static_cast<double>(from.size_count);
  const SchedulingContext context{clock_->now(), options_.processing_delay,
                                  link.out.head_of_line_estimate(average_kb)};

  PurgeStats purge_stats;
  auto taken = link.out.take_next(context, options_.purge, &purge_stats);
  stats_->on_purge(purge_stats);
  if (purge_stats.expired + purge_stats.hopeless > 0) {
    outstanding_->fetch_sub(purge_stats.expired + purge_stats.hopeless,
                            std::memory_order_release);
  }
  if (!taken.has_value()) {
    link.busy = false;
    return;
  }

  link.busy = true;
  const TimeMs duration = link.true_link.sample_send_time(
      link.rng, taken->message->size_kb());
  link.in_flight = std::move(*taken);
  link.tx_timer =
      worker.wheel.schedule(tick_ceil(clock_->now() + duration),
                            TimerEvent{link_index, /*tx=*/true});
}

void Reactor::on_tx_done(Worker& worker, std::uint32_t link_index) {
  LinkState& link = *links_[link_index];
  std::shared_ptr<const Message> message = std::move(link.in_flight.message);
  link.in_flight = QueuedMessage{};

  if (options_.broker_shard != nullptr &&
      (*options_.broker_shard)[link.to] != options_.shard) {
    // The downstream broker lives in another process.  A true return
    // transfers the copy's outstanding increment to the transport (held
    // until the peer's cumulative ack); false means the transport is
    // stopped and the copy dies here.
    const int peer = static_cast<int>((*options_.broker_shard)[link.to]);
    if (!options_.forwarder || !options_.forwarder(peer, link.to, message)) {
      stats_->on_loss(1);
      outstanding_->fetch_sub(1, std::memory_order_release);
    }
  } else {
    const std::uint32_t owner = owner_of_broker_[link.to];
    if (owner == worker.id) {
      deposit(worker, link.to, std::move(message));
    } else {
      Worker& target = *workers_[owner];
      target.inbound[worker.id]->push(Inbound{link.to, std::move(message)});
      wake(target);
    }
  }

  // The link is free at this instant: pop the next pick inline (or go
  // idle) — the event-driven equivalent of the sender loop's next
  // iteration.
  start_transmission(worker, link_index);
}

}  // namespace bdps
