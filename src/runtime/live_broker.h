// Live (threaded) broker runtime — shared declarations.
//
// The discrete-event simulator proves the scheduling *math*; the live
// runtime demonstrates the same OutputQueue/SchedulerState/purge engine
// under real concurrency, with deliveries checked against deadlines in
// (scaled) real time.  The clock and stats here are shared by both
// execution modes: the in-process reactor worker pool (runtime/reactor.h —
// transmissions are timer-wheel deadlines) and the socket-backed shard
// runtime layered on top of it (net/endpoint.h trunks).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "broker/broker.h"
#include "runtime/channel.h"

namespace bdps {

/// Scaled wall clock: `speedup` simulated milliseconds elapse per real
/// millisecond, so the paper's multi-second transfers run in demo time.
class LiveClock {
 public:
  explicit LiveClock(double speedup = 1.0) : speedup_(speedup) {}

  void start() { start_ = std::chrono::steady_clock::now(); }

  /// Simulated milliseconds since start().
  TimeMs now() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double real_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    return real_ms * speedup_;
  }

  /// Sleeps the calling thread for `sim_ms` simulated milliseconds.
  void sleep_for(TimeMs sim_ms) const;

  /// The real instant at which the clock reads `sim_ms` — what the reactor
  /// hands to wait_until so a parked worker wakes exactly when its next
  /// timer-wheel deadline arrives.
  std::chrono::steady_clock::time_point real_time_at(TimeMs sim_ms) const {
    return start_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            sim_ms / speedup_));
  }

  double speedup() const { return speedup_; }

 private:
  double speedup_;
  std::chrono::steady_clock::time_point start_{};
};

/// One message delivery observed by the live runtime.
struct LiveDelivery {
  SubscriberId subscriber = 0;
  MessageId message = 0;
  TimeMs delay = 0.0;
  bool valid = false;
  double price = 0.0;
};

/// Thread-safe accumulator shared by all live brokers.
class LiveStats {
 public:
  void on_reception() { receptions_.fetch_add(1, std::memory_order_relaxed); }
  void on_purge(const PurgeStats& stats);
  void on_delivery(const LiveDelivery& delivery);
  /// Copies destroyed by faults (broker crash wipes, severed trunks) —
  /// distinct from deadline purges.
  void on_loss(std::size_t n) { lost_.fetch_add(n, std::memory_order_relaxed); }

  std::size_t receptions() const { return receptions_.load(); }
  std::size_t purged() const { return purged_.load(); }
  std::size_t lost() const { return lost_.load(); }
  std::vector<LiveDelivery> deliveries() const;
  std::size_t valid_deliveries() const;
  double earning() const;

 private:
  std::atomic<std::size_t> receptions_{0};
  std::atomic<std::size_t> purged_{0};
  std::atomic<std::size_t> lost_{0};
  mutable std::mutex mutex_;
  std::vector<LiveDelivery> deliveries_;
};

}  // namespace bdps
