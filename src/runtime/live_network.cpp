#include "runtime/live_network.h"

#include <algorithm>
#include <stdexcept>

#include "broker/fanout.h"
#include "broker/output_queue.h"

namespace bdps {

LiveNetwork::LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
                         const Strategy* strategy, LiveOptions options)
    : topology_(topology),
      fabric_(fabric),
      strategy_(strategy),
      options_(options),
      clock_(options.speedup) {
  const std::size_t n = topology_->graph.broker_count();
  const bool socket = options_.mode == LiveMode::kSocket;

  if (socket) {
    broker_shard_ = options_.net.broker_shard;
    if (broker_shard_.empty()) {
      broker_shard_.assign(n, static_cast<std::uint32_t>(options_.net.shard));
    }
    if (broker_shard_.size() != n) {
      throw std::invalid_argument(
          "live network: broker_shard size != broker count");
    }
    if (options_.net.shard < 0 ||
        options_.net.shard >= options_.net.shard_count) {
      throw std::invalid_argument("live network: shard out of range");
    }
  }

  // Which directed links some subscription routes over.
  out_links_.resize(n);
  std::vector<EdgeId> needed;
  for (std::size_t b = 0; b < n; ++b) {
    for (const SubscriptionEntry& entry :
         fabric_->table(static_cast<BrokerId>(b)).entries()) {
      if (entry.is_local()) continue;
      const EdgeId edge =
          topology_->graph.edge_id(static_cast<BrokerId>(b), entry.next_hop);
      if (edge == kNoEdge) {
        throw std::invalid_argument(
            "live network: table references missing link");
      }
      needed.push_back(edge);
    }
  }
  std::sort(needed.begin(), needed.end(),
            [this](EdgeId a, EdgeId b) {
              const Edge& ea = topology_->graph.edge(a);
              const Edge& eb = topology_->graph.edge(b);
              if (ea.from != eb.from) return ea.from < eb.from;
              return ea.to < eb.to;
            });
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  // The engines' per-edge stream discipline: split once per *true* edge in
  // edge-id order, whether or not the link is served, so a link's stream is
  // a pure function of (seed, topology) — never of the subscription set,
  // and never of the shard layout (each stream is consumed by exactly one
  // shard, the one serving the edge).
  Rng link_root(options_.seed);
  std::vector<Rng> streams;
  streams.reserve(topology_->graph.edge_count());
  for (std::size_t e = 0; e < topology_->graph.edge_count(); ++e) {
    streams.push_back(link_root.split());
  }

  if (socket) cut_edges_of_peer_.resize(options_.net.shard_count);

  std::vector<LiveLinkSpec> specs;
  specs.reserve(needed.size());
  for (const EdgeId edge : needed) {
    const Edge& e = topology_->graph.edge(edge);
    // Links follow their *source* broker's shard; a shard serves the full
    // transmission simulation of its outgoing cut edges and only the
    // deposit crosses the trunk.
    if (socket && broker_shard_[e.from] !=
                      static_cast<std::uint32_t>(options_.net.shard)) {
      continue;
    }
    specs.push_back(LiveLinkSpec{e.from, e.to, edge, e.link.params(),
                                 streams[static_cast<std::size_t>(edge)]});
    // (from, to)-sorted iteration makes each out_links_ row ascending by
    // neighbour — the order FanOutGrouper::bind requires.
    out_links_[e.from].push_back(LinkRef{e.to, edge});
    if (socket && broker_shard_[e.to] !=
                      static_cast<std::uint32_t>(options_.net.shard)) {
      cut_edges_of_peer_[broker_shard_[e.to]].push_back(edge);
    }
  }
  link_count_ = specs.size();

  if (socket) {
    edge_fault_down_.assign(topology_->graph.edge_count(), 0);
    trunk_up_.assign(static_cast<std::size_t>(options_.net.shard_count), 0);
    NetEndpointOptions net_options;
    net_options.shard = options_.net.shard;
    net_options.shard_count = options_.net.shard_count;
    net_options.reconnect_initial_ms = options_.net.reconnect_initial_ms;
    net_options.reconnect_max_ms = options_.net.reconnect_max_ms;
    net_options.bind_host = options_.net.bind_host;
    net_options.peer_hosts = options_.net.peer_hosts;
    endpoint_ = std::make_unique<NetEndpoint>(
        net_options,
        [this](BrokerId target, const Message& message) {
          on_trunk_forward(target, message);
        },
        [this](std::uint64_t n_acked) { on_trunk_acked(n_acked); },
        [this](int peer, bool up) { on_trunk_peer_state(peer, up); });
  }

  ReactorOptions reactor_options;
  reactor_options.processing_delay = options_.processing_delay;
  reactor_options.purge = options_.purge;
  reactor_options.workers = options_.workers;
  reactor_options.wheel_tick_ms = options_.wheel_tick_ms;
  if (socket) {
    reactor_options.broker_shard = &broker_shard_;
    reactor_options.shard = static_cast<std::uint32_t>(options_.net.shard);
    reactor_options.forwarder = [this](int peer, BrokerId target,
                                       const std::shared_ptr<const Message>&
                                           message) {
      return endpoint_->forward_remote(peer, target, message);
    };
  }
  reactor_ = std::make_unique<Reactor>(topology_, fabric_, strategy_,
                                       reactor_options, &clock_, &stats_,
                                       &outstanding_, std::move(specs),
                                       &out_links_);

  // Cut edges start held: a trunk that is not yet established cannot carry
  // deposits.  on_trunk_peer_state raises them as trunks come up.
  for (const std::vector<EdgeId>& edges : cut_edges_of_peer_) {
    for (const EdgeId edge : edges) reactor_->set_link_state(edge, false);
  }
}

LiveNetwork::~LiveNetwork() { stop(); }

void LiveNetwork::start() {
  if (started_) return;
  started_ = true;
  clock_.start();
  reactor_->start();
}

void LiveNetwork::publish(PublisherId publisher,
                          const Message& template_message) {
  publish(publisher, template_message, next_message_id_.fetch_add(1));
}

void LiveNetwork::publish(PublisherId publisher,
                          const Message& template_message, MessageId id) {
  const BrokerId home =
      topology_->publisher_edges.at(static_cast<std::size_t>(publisher));
  if (!serves(home)) {
    throw std::invalid_argument(
        "live network: publisher's edge broker is not in this shard");
  }
  auto message = std::make_shared<Message>(
      id, publisher, clock_.now(), template_message.size_kb(),
      template_message.head(), template_message.allowed_delay());
  outstanding_.fetch_add(1);
  if (!reactor_->publish(home, std::move(message))) {
    outstanding_.fetch_sub(1);
  }
}

void LiveNetwork::drain() {
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool LiveNetwork::serves(BrokerId broker) const {
  if (options_.mode != LiveMode::kSocket) return true;
  return broker_shard_[static_cast<std::size_t>(broker)] ==
         static_cast<std::uint32_t>(options_.net.shard);
}

int LiveNetwork::shard_of(BrokerId broker) const {
  return static_cast<int>(broker_shard_[static_cast<std::size_t>(broker)]);
}

void LiveNetwork::set_link_state(BrokerId a, BrokerId b, bool up) {
  for (const EdgeId edge :
       {topology_->graph.edge_id(a, b), topology_->graph.edge_id(b, a)}) {
    if (edge != kNoEdge) set_edge_state(edge, up);
  }
}

void LiveNetwork::set_edge_state(EdgeId edge, bool up) {
  if (edge < 0 ||
      static_cast<std::size_t>(edge) >= topology_->graph.edge_count()) {
    return;
  }
  if (options_.mode != LiveMode::kSocket) {
    reactor_->set_link_state(edge, up);
    return;
  }
  const Edge& e = topology_->graph.edge(edge);
  if (!serves(e.from)) return;  // The owning shard replays this half.
  if (serves(e.to)) {           // Intra-shard: plain reactor churn.
    reactor_->set_link_state(edge, up);
    return;
  }
  // Cut edge: the fault flag folds with the trunk state, and a fault-down
  // severs the trunk for real — reconnect backoff plus this same fold
  // bring the edge back once both halves clear.
  const int peer = shard_of(e.to);
  bool effective = false;
  {
    const std::lock_guard<std::mutex> lock(net_state_mutex_);
    edge_fault_down_[static_cast<std::size_t>(edge)] = up ? 0 : 1;
    effective = up && trunk_up_[static_cast<std::size_t>(peer)] != 0;
  }
  reactor_->set_link_state(edge, effective);
  if (!up && endpoint_) endpoint_->drop_peer(peer);
}

void LiveNetwork::set_broker_state(BrokerId broker, bool up) {
  if (broker < 0 ||
      static_cast<std::size_t>(broker) >= topology_->graph.broker_count()) {
    return;
  }
  if (!serves(broker)) return;
  reactor_->set_broker_state(broker, up);
}

void LiveNetwork::stop() {
  if (endpoint_) {
    // Transport first: copies the peers never acked are settled as losses
    // so the reactor workers can observe outstanding == 0 and exit.  Any
    // forward the reactor attempts after this point is refused by the
    // endpoint and settled by the reactor itself.
    const std::uint64_t unacked = endpoint_->stop();
    if (unacked > 0) {
      stats_.on_loss(unacked);
      outstanding_.fetch_sub(unacked, std::memory_order_release);
    }
  }
  if (reactor_) reactor_->stop();
}

std::uint16_t LiveNetwork::trunk_port() const {
  return endpoint_ ? endpoint_->port() : 0;
}

void LiveNetwork::connect_trunks(const std::vector<std::uint16_t>& ports) {
  if (endpoint_) endpoint_->connect(ports);
}

bool LiveNetwork::wait_trunks(std::chrono::milliseconds timeout) {
  return endpoint_ ? endpoint_->wait_connected(timeout) : true;
}

std::uint64_t LiveNetwork::trunk_forwards_sent() const {
  return endpoint_ ? endpoint_->forwards_sent() : 0;
}

std::uint64_t LiveNetwork::trunk_forwards_received() const {
  return endpoint_ ? endpoint_->forwards_received() : 0;
}

std::uint64_t LiveNetwork::trunk_reconnects() const {
  return endpoint_ ? endpoint_->reconnects() : 0;
}

void LiveNetwork::on_trunk_forward(BrokerId target, const Message& message) {
  // Deposit at the locally served downstream broker.  The increment lands
  // *before* the endpoint acks this forward (the handler runs inline in
  // the net thread's read batch), so the sender's release of its own
  // increment can never leave the cluster-wide sum at zero with the copy
  // alive.
  outstanding_.fetch_add(1);
  if (!reactor_->publish(target, std::make_shared<Message>(message))) {
    outstanding_.fetch_sub(1, std::memory_order_release);
    stats_.on_loss(1);
  }
}

void LiveNetwork::on_trunk_acked(std::uint64_t n) {
  outstanding_.fetch_sub(n, std::memory_order_release);
}

void LiveNetwork::on_trunk_peer_state(int peer, bool up) {
  std::vector<std::pair<EdgeId, bool>> updates;
  {
    const std::lock_guard<std::mutex> lock(net_state_mutex_);
    trunk_up_[static_cast<std::size_t>(peer)] = up ? 1 : 0;
    for (const EdgeId edge : cut_edges_of_peer_[static_cast<std::size_t>(peer)]) {
      updates.emplace_back(
          edge, up && edge_fault_down_[static_cast<std::size_t>(edge)] == 0);
    }
  }
  for (const auto& [edge, state] : updates) {
    reactor_->set_link_state(edge, state);
  }
}

}  // namespace bdps
