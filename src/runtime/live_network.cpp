#include "runtime/live_network.h"

#include <algorithm>
#include <condition_variable>
#include <stdexcept>

#include "broker/fanout.h"
#include "broker/output_queue.h"
#include "runtime/channel.h"

namespace bdps {

struct LiveNetwork::LinkWorker {
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
  LinkModel true_link;
  Rng rng;
  std::mutex mutex;
  std::condition_variable cv;
  /// The simulator's queue engine, verbatim: owns the waiting messages and
  /// the per-queue SchedulerState; guarded by `mutex`.
  OutputQueue out;
  /// Fault churn (guarded by `mutex`): while down the sender holds — no
  /// picks — until link-up or stop (stop flushes down links).
  bool down = false;

  explicit LinkWorker(const LiveLinkSpec& spec, const Strategy* strategy)
      : from(spec.from),
        to(spec.to),
        true_link(spec.params),
        rng(spec.rng),
        out(spec.to, spec.edge, spec.params, strategy) {}
};

LiveNetwork::LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
                         const Strategy* strategy, LiveOptions options)
    : topology_(topology),
      fabric_(fabric),
      strategy_(strategy),
      options_(options),
      clock_(options.speedup) {
  const std::size_t n = topology_->graph.broker_count();

  // Which directed links some subscription routes over.
  out_links_.resize(n);
  std::vector<EdgeId> needed;
  for (std::size_t b = 0; b < n; ++b) {
    for (const SubscriptionEntry& entry :
         fabric_->table(static_cast<BrokerId>(b)).entries()) {
      if (entry.is_local()) continue;
      const EdgeId edge =
          topology_->graph.edge_id(static_cast<BrokerId>(b), entry.next_hop);
      if (edge == kNoEdge) {
        throw std::invalid_argument(
            "live network: table references missing link");
      }
      needed.push_back(edge);
    }
  }
  std::sort(needed.begin(), needed.end(),
            [this](EdgeId a, EdgeId b) {
              const Edge& ea = topology_->graph.edge(a);
              const Edge& eb = topology_->graph.edge(b);
              if (ea.from != eb.from) return ea.from < eb.from;
              return ea.to < eb.to;
            });
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  link_count_ = needed.size();

  // The engines' per-edge stream discipline: split once per *true* edge in
  // edge-id order, whether or not the link is served, so a link's stream is
  // a pure function of (seed, topology) — never of the subscription set.
  Rng link_root(options_.seed);
  std::vector<Rng> streams;
  streams.reserve(topology_->graph.edge_count());
  for (std::size_t e = 0; e < topology_->graph.edge_count(); ++e) {
    streams.push_back(link_root.split());
  }

  std::vector<LiveLinkSpec> specs;
  specs.reserve(needed.size());
  for (const EdgeId edge : needed) {
    const Edge& e = topology_->graph.edge(edge);
    specs.push_back(LiveLinkSpec{e.from, e.to, edge, e.link.params(),
                                 streams[static_cast<std::size_t>(edge)]});
    // (from, to)-sorted iteration makes each out_links_ row ascending by
    // neighbour — the order FanOutGrouper::bind requires.
    out_links_[e.from].push_back(LinkRef{e.to, edge});
  }

  if (options_.mode == LiveMode::kReactor) {
    ReactorOptions reactor_options;
    reactor_options.processing_delay = options_.processing_delay;
    reactor_options.purge = options_.purge;
    reactor_options.workers = options_.workers;
    reactor_options.wheel_tick_ms = options_.wheel_tick_ms;
    reactor_ = std::make_unique<Reactor>(topology_, fabric_, strategy_,
                                         reactor_options, &clock_, &stats_,
                                         &outstanding_, std::move(specs),
                                         &out_links_);
    return;
  }

  // Thread-per-link: blocking inbox per broker, one worker per link.
  inboxes_.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    inboxes_.push_back(
        std::make_unique<Channel<std::shared_ptr<const Message>>>());
  }
  size_totals_.resize(n);
  for (auto& t : size_totals_) t = std::make_unique<SizeTotal>();
  link_by_edge_.assign(topology_->graph.edge_count(), nullptr);
  for (const LiveLinkSpec& spec : specs) {
    links_.push_back(std::make_unique<LinkWorker>(spec, strategy_));
    link_by_edge_[spec.edge] = links_.back().get();
  }
}

LiveNetwork::~LiveNetwork() { stop(); }

void LiveNetwork::start() {
  if (started_) return;
  started_ = true;
  clock_.start();
  if (reactor_) {
    reactor_->start();
    return;
  }
  for (std::size_t b = 0; b < inboxes_.size(); ++b) {
    threads_.emplace_back(
        [this, b] { receiver_loop(static_cast<BrokerId>(b)); });
  }
  for (auto& link : links_) {
    threads_.emplace_back([this, worker = link.get()] { sender_loop(*worker); });
  }
}

void LiveNetwork::publish(PublisherId publisher,
                          const Message& template_message) {
  const BrokerId home =
      topology_->publisher_edges.at(static_cast<std::size_t>(publisher));
  auto message = std::make_shared<Message>(
      next_message_id_.fetch_add(1), publisher, clock_.now(),
      template_message.size_kb(), template_message.head(),
      template_message.allowed_delay());
  outstanding_.fetch_add(1);
  const bool accepted =
      reactor_ ? reactor_->publish(home, std::move(message))
               : inboxes_[home]->push(std::move(message));
  if (!accepted) {
    outstanding_.fetch_sub(1);
  }
}

void LiveNetwork::drain() {
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void LiveNetwork::set_link_state(BrokerId a, BrokerId b, bool up) {
  for (const EdgeId edge :
       {topology_->graph.edge_id(a, b), topology_->graph.edge_id(b, a)}) {
    if (edge != kNoEdge) set_edge_state(edge, up);
  }
}

void LiveNetwork::set_edge_state(EdgeId edge, bool up) {
  if (reactor_) {
    reactor_->set_link_state(edge, up);
    return;
  }
  LinkWorker* worker = link_by_edge_[edge];
  if (worker == nullptr) return;  // No subscription routes over this link.
  {
    const std::lock_guard<std::mutex> lock(worker->mutex);
    worker->down = !up;
  }
  worker->cv.notify_all();
}

void LiveNetwork::stop() {
  if (reactor_) {
    reactor_->stop();
    return;
  }
  if (stop_started_.exchange(true)) {
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    return;
  }
  // Two-phase shutdown.  Releasing the senders while receivers still run
  // would let a sender observe (stopping, queue empty) and exit just
  // before its upstream receiver enqueues one more copy — a stranded copy
  // and a drain() that never returns.  So: close the inboxes and join the
  // receivers first (after which no new copy can enter a sender queue),
  // only then raise stopping_ for the senders, which flush what remains
  // (transmissions toward closed inboxes are dropped and accounted).
  for (auto& inbox : inboxes_) inbox->close();
  const std::size_t receivers = std::min(inboxes_.size(), threads_.size());
  for (std::size_t i = 0; i < receivers; ++i) {
    if (threads_[i].joinable()) threads_[i].join();
  }
  stopping_.store(true);
  for (auto& link : links_) {
    // The empty critical section orders the notify after any in-progress
    // wait decision (same pattern as Reactor::wake): a sender that read
    // stopping_ == false under its mutex is already parked in wait when
    // this lock is granted, so the notify cannot be lost.
    { const std::lock_guard<std::mutex> lock(link->mutex); }
    link->cv.notify_all();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void LiveNetwork::receiver_loop(BrokerId broker) {
  Channel<std::shared_ptr<const Message>>& inbox = *inboxes_[broker];
  // Match scratch and fan-out grouper reused across messages (one receiver
  // thread per broker) — the same sorted-slot grouping Broker::process
  // uses, churn filter included; each group's edge id indexes the flat
  // worker table directly.
  std::vector<const SubscriptionEntry*> matched;
  FanOutGrouper grouper;
  grouper.bind(out_links_[broker]);
  for (;;) {
    // Batched drain: one lock round-trip per burst instead of per message
    // (Channel::pop_all swaps the deque out whole).
    auto batch = inbox.pop_all();
    if (batch.empty()) return;  // Closed and drained.
    for (auto& popped : batch) {
      const std::shared_ptr<const Message> message = std::move(popped);

      stats_.on_reception();
      clock_.sleep_for(options_.processing_delay);
      const TimeMs now = clock_.now();

      size_totals_[broker]->kb.fetch_add(message->size_kb());
      size_totals_[broker]->count.fetch_add(1);

      fabric_->match_at(broker, *message, matched);
      grouper.group(matched, *message);

      for (const SubscriptionEntry* entry : grouper.local()) {
        const TimeMs delay = message->elapsed(now);
        const TimeMs deadline = entry->effective_deadline(*message);
        stats_.on_delivery(LiveDelivery{entry->subscription->subscriber,
                                        message->id(), delay,
                                        delay <= deadline,
                                        entry->subscription->price});
      }

      for (FanOutGroup& group : grouper.groups()) {
        if (group.targets.empty()) continue;
        LinkWorker* worker = link_by_edge_[group.edge];
        QueuedMessage queued{message, now, std::move(group.targets)};
        group.targets = {};  // Moved-from: reset to a clean empty slot.
        // Fold the scoring kernel on the receiver thread, outside the
        // sender's lock: picks and purges on the hot sender loop then never
        // touch the subscription table.
        precompute_scores(queued, options_.processing_delay);
        outstanding_.fetch_add(1);
        {
          const std::lock_guard<std::mutex> lock(worker->mutex);
          worker->out.enqueue(std::move(queued));
        }
        worker->cv.notify_one();
      }

      outstanding_.fetch_sub(1, std::memory_order_release);
    }
  }
}

void LiveNetwork::sender_loop(LinkWorker& worker) {
  for (;;) {
    QueuedMessage chosen;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      // A down link holds its queue (stop still flushes: pending copies
      // are finished rather than stranded, the legacy shutdown contract).
      worker.cv.wait(lock, [&] {
        return stopping_.load() || (!worker.down && !worker.out.empty());
      });
      if (worker.out.empty()) return;  // Stopping with nothing queued.

      const SizeTotal& totals = *size_totals_[worker.from];
      const std::size_t count = totals.count.load();
      const double average_kb =
          count == 0 ? 0.0 : totals.kb.load() / static_cast<double>(count);
      const SchedulingContext context{
          clock_.now(), options_.processing_delay,
          worker.out.head_of_line_estimate(average_kb)};

      PurgeStats purge_stats;
      auto taken = worker.out.take_next(context, options_.purge, &purge_stats);
      stats_.on_purge(purge_stats);
      if (purge_stats.expired + purge_stats.hopeless > 0) {
        outstanding_.fetch_sub(purge_stats.expired + purge_stats.hopeless,
                               std::memory_order_release);
      }
      if (!taken.has_value()) continue;  // Queue emptied by the purge.
      chosen = std::move(*taken);
    }

    const TimeMs duration =
        worker.true_link.sample_send_time(worker.rng, chosen.message->size_kb());
    clock_.sleep_for(duration);

    if (!inboxes_[worker.to]->push(std::move(chosen.message))) {
      outstanding_.fetch_sub(1, std::memory_order_release);
    }
  }
}

}  // namespace bdps
