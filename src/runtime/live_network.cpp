#include "runtime/live_network.h"

#include <algorithm>
#include <condition_variable>
#include <stdexcept>

#include "broker/fanout.h"
#include "broker/output_queue.h"

namespace bdps {

struct LiveNetwork::LinkWorker {
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
  LinkModel true_link;
  Rng rng;
  std::mutex mutex;
  std::condition_variable cv;
  /// The simulator's queue engine, verbatim: owns the waiting messages and
  /// the per-queue SchedulerState; guarded by `mutex`.
  OutputQueue out;

  LinkWorker(BrokerId f, BrokerId t, EdgeId edge, LinkParams params,
             const Strategy* strategy, Rng r)
      : from(f),
        to(t),
        true_link(params),
        rng(r),
        out(t, edge, params, strategy) {}
};

LiveNetwork::LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
                         const Strategy* strategy, LiveOptions options)
    : topology_(topology),
      fabric_(fabric),
      strategy_(strategy),
      options_(options),
      clock_(options.speedup) {
  const std::size_t n = topology_->graph.broker_count();
  inboxes_.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    inboxes_.push_back(
        std::make_unique<Channel<std::shared_ptr<const Message>>>());
  }
  size_totals_.resize(n);
  for (auto& t : size_totals_) t = std::make_unique<SizeTotal>();

  // One sender worker per directed link that some subscription routes over;
  // link_by_edge_ marks the needed edges, then workers are created in
  // (from, to) order so the per-worker RNG streams stay deterministic.
  link_by_edge_.assign(topology_->graph.edge_count(), nullptr);
  out_links_.resize(n);
  std::vector<EdgeId> needed;
  for (std::size_t b = 0; b < n; ++b) {
    for (const SubscriptionEntry& entry :
         fabric_->table(static_cast<BrokerId>(b)).entries()) {
      if (entry.is_local()) continue;
      const EdgeId edge =
          topology_->graph.edge_id(static_cast<BrokerId>(b), entry.next_hop);
      if (edge == kNoEdge) {
        throw std::invalid_argument(
            "live network: table references missing link");
      }
      needed.push_back(edge);
    }
  }
  std::sort(needed.begin(), needed.end(),
            [this](EdgeId a, EdgeId b) {
              const Edge& ea = topology_->graph.edge(a);
              const Edge& eb = topology_->graph.edge(b);
              if (ea.from != eb.from) return ea.from < eb.from;
              return ea.to < eb.to;
            });
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  Rng rng(options_.seed);
  for (const EdgeId edge : needed) {
    const Edge& e = topology_->graph.edge(edge);
    links_.push_back(std::make_unique<LinkWorker>(
        e.from, e.to, edge, e.link.params(), strategy_, rng.split()));
    link_by_edge_[edge] = links_.back().get();
    // (from, to)-sorted iteration makes each out_links_ row ascending by
    // neighbour — the order FanOutGrouper::bind requires.
    out_links_[e.from].push_back(LinkRef{e.to, edge});
  }
}

LiveNetwork::~LiveNetwork() { stop(); }

void LiveNetwork::start() {
  if (started_) return;
  started_ = true;
  clock_.start();
  for (std::size_t b = 0; b < inboxes_.size(); ++b) {
    threads_.emplace_back(
        [this, b] { receiver_loop(static_cast<BrokerId>(b)); });
  }
  for (auto& link : links_) {
    threads_.emplace_back([this, worker = link.get()] { sender_loop(*worker); });
  }
}

void LiveNetwork::publish(PublisherId publisher,
                          const Message& template_message) {
  const BrokerId edge =
      topology_->publisher_edges.at(static_cast<std::size_t>(publisher));
  auto message = std::make_shared<Message>(
      next_message_id_.fetch_add(1), publisher, clock_.now(),
      template_message.size_kb(), template_message.head(),
      template_message.allowed_delay());
  outstanding_.fetch_add(1);
  if (!inboxes_[edge]->push(std::move(message))) {
    outstanding_.fetch_sub(1);
  }
}

void LiveNetwork::drain() {
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void LiveNetwork::stop() {
  if (stopping_.exchange(true)) {
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    return;
  }
  for (auto& inbox : inboxes_) inbox->close();
  for (auto& link : links_) link->cv.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void LiveNetwork::receiver_loop(BrokerId broker) {
  Channel<std::shared_ptr<const Message>>& inbox = *inboxes_[broker];
  // Match scratch and fan-out grouper reused across messages (one receiver
  // thread per broker) — the same sorted-slot grouping Broker::process
  // uses, churn filter included; each group's edge id indexes the flat
  // worker table directly.
  std::vector<const SubscriptionEntry*> matched;
  FanOutGrouper grouper;
  grouper.bind(out_links_[broker]);
  for (;;) {
    auto popped = inbox.pop();
    if (!popped.has_value()) return;  // Closed and drained.
    const std::shared_ptr<const Message> message = std::move(*popped);

    stats_.on_reception();
    clock_.sleep_for(options_.processing_delay);
    const TimeMs now = clock_.now();

    size_totals_[broker]->kb.fetch_add(message->size_kb());
    size_totals_[broker]->count.fetch_add(1);

    fabric_->match_at(broker, *message, matched);
    grouper.group(matched, *message);

    for (const SubscriptionEntry* entry : grouper.local()) {
      const TimeMs delay = message->elapsed(now);
      const TimeMs deadline = entry->effective_deadline(*message);
      stats_.on_delivery(LiveDelivery{entry->subscription->subscriber,
                                      message->id(), delay,
                                      delay <= deadline,
                                      entry->subscription->price});
    }

    for (FanOutGroup& group : grouper.groups()) {
      if (group.targets.empty()) continue;
      LinkWorker* worker = link_by_edge_[group.edge];
      QueuedMessage queued{message, now, std::move(group.targets)};
      group.targets = {};  // Moved-from: reset to a clean empty slot.
      // Fold the scoring kernel on the receiver thread, outside the sender's
      // lock: picks and purges on the hot sender loop then never touch the
      // subscription table.
      precompute_scores(queued, options_.processing_delay);
      outstanding_.fetch_add(1);
      {
        const std::lock_guard<std::mutex> lock(worker->mutex);
        worker->out.enqueue(std::move(queued));
      }
      worker->cv.notify_one();
    }

    outstanding_.fetch_sub(1, std::memory_order_release);
  }
}

void LiveNetwork::sender_loop(LinkWorker& worker) {
  for (;;) {
    QueuedMessage chosen;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.cv.wait(lock, [&] {
        return stopping_.load() || !worker.out.empty();
      });
      if (worker.out.empty()) return;  // Stopping with nothing queued.

      const SizeTotal& totals = *size_totals_[worker.from];
      const std::size_t count = totals.count.load();
      const double average_kb =
          count == 0 ? 0.0 : totals.kb.load() / static_cast<double>(count);
      const SchedulingContext context{
          clock_.now(), options_.processing_delay,
          worker.out.head_of_line_estimate(average_kb)};

      PurgeStats purge_stats;
      auto taken = worker.out.take_next(context, options_.purge, &purge_stats);
      stats_.on_purge(purge_stats);
      if (purge_stats.expired + purge_stats.hopeless > 0) {
        outstanding_.fetch_sub(purge_stats.expired + purge_stats.hopeless,
                               std::memory_order_release);
      }
      if (!taken.has_value()) continue;  // Queue emptied by the purge.
      chosen = std::move(*taken);
    }

    const TimeMs duration =
        worker.true_link.sample_send_time(worker.rng, chosen.message->size_kb());
    clock_.sleep_for(duration);

    if (!inboxes_[worker.to]->push(std::move(chosen.message))) {
      outstanding_.fetch_sub(1, std::memory_order_release);
    }
  }
}

}  // namespace bdps
