#include "runtime/live_network.h"

#include <condition_variable>
#include <set>
#include <stdexcept>

namespace bdps {

struct LiveNetwork::LinkWorker {
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
  LinkParams believed;
  LinkModel true_link;
  Rng rng;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<QueuedMessage> queue;

  LinkWorker(BrokerId f, BrokerId t, LinkParams params, Rng r)
      : from(f), to(t), believed(params), true_link(params), rng(r) {}
};

LiveNetwork::LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
                         const Scheduler* scheduler, LiveOptions options)
    : topology_(topology),
      fabric_(fabric),
      scheduler_(scheduler),
      options_(options),
      clock_(options.speedup) {
  const std::size_t n = topology_->graph.broker_count();
  inboxes_.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    inboxes_.push_back(
        std::make_unique<Channel<std::shared_ptr<const Message>>>());
  }
  size_totals_.resize(n);
  for (auto& t : size_totals_) t = std::make_unique<SizeTotal>();

  // One sender worker per directed link that some subscription routes over.
  Rng rng(options_.seed);
  std::set<std::pair<BrokerId, BrokerId>> needed;
  for (std::size_t b = 0; b < n; ++b) {
    for (const SubscriptionEntry& entry :
         fabric_->table(static_cast<BrokerId>(b)).entries()) {
      if (!entry.is_local()) {
        needed.emplace(static_cast<BrokerId>(b), entry.next_hop);
      }
    }
  }
  for (const auto& [from, to] : needed) {
    const EdgeId edge = topology_->graph.find_edge(from, to);
    if (edge == kNoEdge) {
      throw std::invalid_argument("live network: table references missing link");
    }
    links_.push_back(std::make_unique<LinkWorker>(
        from, to, topology_->graph.edge(edge).link.params(), rng.split()));
    link_map_[{from, to}] = links_.back().get();
  }
}

LiveNetwork::~LiveNetwork() { stop(); }

void LiveNetwork::start() {
  if (started_) return;
  started_ = true;
  clock_.start();
  for (std::size_t b = 0; b < inboxes_.size(); ++b) {
    threads_.emplace_back(
        [this, b] { receiver_loop(static_cast<BrokerId>(b)); });
  }
  for (auto& link : links_) {
    threads_.emplace_back([this, worker = link.get()] { sender_loop(*worker); });
  }
}

void LiveNetwork::publish(PublisherId publisher,
                          const Message& template_message) {
  const BrokerId edge =
      topology_->publisher_edges.at(static_cast<std::size_t>(publisher));
  auto message = std::make_shared<Message>(
      next_message_id_.fetch_add(1), publisher, clock_.now(),
      template_message.size_kb(), template_message.head(),
      template_message.allowed_delay());
  outstanding_.fetch_add(1);
  if (!inboxes_[edge]->push(std::move(message))) {
    outstanding_.fetch_sub(1);
  }
}

void LiveNetwork::drain() {
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void LiveNetwork::stop() {
  if (stopping_.exchange(true)) {
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    return;
  }
  for (auto& inbox : inboxes_) inbox->close();
  for (auto& link : links_) link->cv.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void LiveNetwork::receiver_loop(BrokerId broker) {
  Channel<std::shared_ptr<const Message>>& inbox = *inboxes_[broker];
  // Match scratch reused across messages (one receiver thread per broker).
  std::vector<const SubscriptionEntry*> matched;
  for (;;) {
    auto popped = inbox.pop();
    if (!popped.has_value()) return;  // Closed and drained.
    const std::shared_ptr<const Message> message = std::move(*popped);

    stats_.on_reception();
    clock_.sleep_for(options_.processing_delay);
    const TimeMs now = clock_.now();

    size_totals_[broker]->kb.fetch_add(message->size_kb());
    size_totals_[broker]->count.fetch_add(1);

    std::map<BrokerId, std::vector<const SubscriptionEntry*>> groups;
    fabric_->match_at(broker, *message, matched);
    for (const SubscriptionEntry* entry : matched) {
      if (!entry->serves_publisher(message->publisher())) continue;
      if (entry->is_local()) {
        const TimeMs delay = message->elapsed(now);
        const TimeMs deadline = entry->effective_deadline(*message);
        stats_.on_delivery(LiveDelivery{entry->subscription->subscriber,
                                        message->id(), delay,
                                        delay <= deadline,
                                        entry->subscription->price});
      } else {
        groups[entry->next_hop].push_back(entry);
      }
    }

    for (auto& [neighbor, targets] : groups) {
      LinkWorker* worker = link_map_.at({broker, neighbor});
      QueuedMessage queued{message, now, std::move(targets)};
      // Fold the scoring kernel on the receiver thread, outside the sender's
      // lock: picks and purges on the hot sender loop then never touch the
      // subscription table.
      precompute_scores(queued, options_.processing_delay);
      outstanding_.fetch_add(1);
      {
        const std::lock_guard<std::mutex> lock(worker->mutex);
        worker->queue.push_back(std::move(queued));
      }
      worker->cv.notify_one();
    }

    outstanding_.fetch_sub(1, std::memory_order_release);
  }
}

void LiveNetwork::sender_loop(LinkWorker& worker) {
  for (;;) {
    QueuedMessage chosen;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.cv.wait(lock, [&] {
        return stopping_.load() || !worker.queue.empty();
      });
      if (worker.queue.empty()) return;  // Stopping with nothing queued.

      const SizeTotal& totals = *size_totals_[worker.from];
      const std::size_t count = totals.count.load();
      const double average_kb =
          count == 0 ? 0.0 : totals.kb.load() / static_cast<double>(count);
      const SchedulingContext context{
          clock_.now(), options_.processing_delay,
          average_kb * worker.believed.mean_ms_per_kb};

      PurgeStats purge_stats;
      auto taken = take_from_queue(worker.queue, context, &purge_stats);
      stats_.on_purge(purge_stats);
      if (purge_stats.expired + purge_stats.hopeless > 0) {
        outstanding_.fetch_sub(purge_stats.expired + purge_stats.hopeless,
                               std::memory_order_release);
      }
      if (!taken.has_value()) continue;  // Queue emptied by the purge.
      chosen = std::move(*taken);
    }

    const TimeMs duration =
        worker.true_link.sample_send_time(worker.rng, chosen.message->size_kb());
    clock_.sleep_for(duration);

    if (!inboxes_[worker.to]->push(std::move(chosen.message))) {
      outstanding_.fetch_sub(1, std::memory_order_release);
    }
  }
}

std::optional<QueuedMessage> LiveNetwork::take_from_queue(
    std::vector<QueuedMessage>& queue, const SchedulingContext& context,
    PurgeStats* purge_stats) {
  *purge_stats += purge_queue(queue, context, options_.purge);
  if (queue.empty()) return std::nullopt;
  return take_at(queue, scheduler_->pick(queue, context));
}

}  // namespace bdps
