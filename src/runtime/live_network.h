// Threaded broker overlay.
//
// LiveNetwork spawns one receiver thread per broker and one sender thread
// per directed overlay link that carries subscriptions.  Receivers pop an
// inbox channel, sleep the processing delay PD, match against the routing
// fabric and either deliver locally or enqueue into the link's OutputQueue
// — the *same* queue + SchedulerState engine the discrete-event simulator
// drives, grouped through the same FanOutGrouper (publisher mask +
// activation-window churn filter included); senders repeatedly call
// OutputQueue::take_next (purge + incremental pick) under the link lock,
// sleep the sampled transmission time and push into the downstream inbox.
//
// Link workers are addressed by EdgeId: a flat per-edge table replaces the
// former (from, to)-keyed map, and the fan-out groups carry the edge id, so
// a receiver reaches its downstream worker with one indexed load.
//
// An outstanding-work counter lets `drain()` block until every copy in
// flight has been delivered, purged or dropped; `stop()` then closes all
// channels and joins the threads (also invoked by the destructor).
#pragma once

#include <optional>
#include <thread>
#include <utility>

#include "runtime/live_broker.h"
#include "scheduling/purge.h"
#include "topology/edge_map.h"

namespace bdps {

struct LiveOptions {
  TimeMs processing_delay = 2.0;
  PurgePolicy purge;
  /// Simulated milliseconds per real millisecond.
  double speedup = 100.0;
  std::uint64_t seed = 1;
};

class LiveNetwork {
 public:
  /// All referenced objects must outlive the network.
  LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
              const Strategy* strategy, LiveOptions options);
  ~LiveNetwork();

  LiveNetwork(const LiveNetwork&) = delete;
  LiveNetwork& operator=(const LiveNetwork&) = delete;

  /// Starts the clock and all broker threads.
  void start();

  /// Publishes a message now (the publish timestamp is taken from the live
  /// clock; `template_message`'s id/head/size/deadline are kept).
  void publish(PublisherId publisher, const Message& template_message);

  /// Blocks until no message copies remain in flight.
  void drain();

  /// Stops and joins all threads (idempotent).
  void stop();

  const LiveStats& stats() const { return stats_; }
  const LiveClock& clock() const { return clock_; }

 private:
  struct LinkWorker;

  /// Running totals backing the per-broker average message size (eq. 6).
  struct SizeTotal {
    std::atomic<double> kb{0.0};
    std::atomic<std::size_t> count{0};
  };

  void receiver_loop(BrokerId broker);
  void sender_loop(LinkWorker& worker);

  const Topology* topology_;
  const RoutingFabric* fabric_;
  const Strategy* strategy_;
  LiveOptions options_;

  LiveClock clock_;
  LiveStats stats_;

  std::vector<std::unique_ptr<Channel<std::shared_ptr<const Message>>>>
      inboxes_;
  std::vector<std::unique_ptr<SizeTotal>> size_totals_;
  std::vector<std::unique_ptr<LinkWorker>> links_;
  /// Flat per-edge worker table (nullptr where the link carries no
  /// subscriptions); the edge ids in a receiver's fan-out groups index it.
  EdgeMap<LinkWorker*> link_by_edge_;
  /// Per-broker downstream links (ascending neighbour order): each
  /// receiver's FanOutGrouper binding.
  std::vector<std::vector<LinkRef>> out_links_;
  std::vector<std::thread> threads_;

  std::atomic<std::size_t> outstanding_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<MessageId> next_message_id_{0};
};

}  // namespace bdps
