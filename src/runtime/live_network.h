// Live broker overlay — event-driven reactor by default, with the legacy
// thread-per-link runtime kept one release as a differential-test oracle.
//
// Both modes drive the *same* engine the discrete-event simulator proves:
// OutputQueue + SchedulerState picks, eq. (11) purges, FanOutGrouper
// admission (publisher mask + activation-window churn filter), deadlines
// checked in (scaled) real time against the LiveClock.  They differ only
// in execution:
//
//   * LiveMode::kReactor (default) — a fixed pool of N workers
//     (runtime/reactor.h): brokers are assigned to workers with the
//     sharded engine's ShardPlan, per-broker Rx and per-link Tx state
//     machines sleep as timers in a hierarchical wheel
//     (common/timer_wheel.h), and cross-worker handoff rides SpscQueue
//     mailboxes plus an epoch/condvar wake protocol.  Thread count is
//     hardware-sized, so one process serves 10k+ links.
//   * LiveMode::kThreadPerLink — one receiver thread per broker plus one
//     sender thread per subscribed directed link, blocking Channel
//     inboxes, threads sleeping through PD and transmissions.  Topology-
//     sized thread counts cap it at a few hundred links; it survives as
//     the behavioural oracle the stress suite diffs the reactor against.
//
// Transmission sampling follows the engines' per-edge RNG stream
// discipline in both modes: one stream split from LiveOptions::seed per
// true EdgeId (edge-id order), so a link's draw sequence is a pure
// function of the seed and the topology — independent of worker
// interleaving, mode, and which other links exist.
//
// An outstanding-work counter lets `drain()` block until every copy in
// flight has been delivered, purged or dropped; `stop()` finishes pending
// work and joins all threads (also invoked by the destructor).
#pragma once

#include <optional>
#include <thread>
#include <utility>

#include "runtime/live_broker.h"
#include "runtime/reactor.h"
#include "scheduling/purge.h"
#include "topology/edge_map.h"

namespace bdps {

enum class LiveMode {
  /// Reactor worker pool + timer wheel (the default).
  kReactor,
  /// Legacy thread-per-link oracle (one release of grace, then removal).
  kThreadPerLink,
};

struct LiveOptions {
  TimeMs processing_delay = 2.0;
  PurgePolicy purge;
  /// Simulated milliseconds per real millisecond.
  double speedup = 100.0;
  /// Seeds the per-EdgeId transmission RNG streams (both modes).
  std::uint64_t seed = 1;
  LiveMode mode = LiveMode::kReactor;
  /// Reactor worker count; 0 = hardware threads.  Ignored by
  /// kThreadPerLink (its thread count is the topology's).
  std::size_t workers = 0;
  /// Reactor timer resolution in simulated milliseconds.
  TimeMs wheel_tick_ms = 0.25;
};

class LiveNetwork {
 public:
  /// All referenced objects must outlive the network.
  LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
              const Strategy* strategy, LiveOptions options);
  ~LiveNetwork();

  LiveNetwork(const LiveNetwork&) = delete;
  LiveNetwork& operator=(const LiveNetwork&) = delete;

  /// Starts the clock and the runtime threads (N workers or per-link).
  void start();

  /// Publishes a message now (the publish timestamp is taken from the live
  /// clock; `template_message`'s id/head/size/deadline are kept).
  void publish(PublisherId publisher, const Message& template_message);

  /// Blocks until no message copies remain in flight.
  void drain();

  /// Fault churn: marks the undirected link (a, b) down or up in both
  /// directions (thread-safe, applied asynchronously by the owning
  /// workers).  While down the link's queue *holds* its copies — reactor
  /// mode additionally cancels the in-flight transmission timer and
  /// requeues the copy; thread-per-link mode lets a transmission already
  /// on the wire finish (the sender thread is sleeping through it), so
  /// timing differs but the eventual delivery set does not.  Callers must
  /// bring links back up (or rely on purges) before drain(), or held
  /// copies keep it blocked.  Unknown or unserved links are ignored.
  void set_link_state(BrokerId a, BrokerId b, bool up);

  /// Single-direction variant keyed by the true graph's EdgeId (the
  /// vocabulary of CompiledFaults batches).
  void set_edge_state(EdgeId edge, bool up);

  /// Stops and joins all threads (idempotent).
  void stop();

  const LiveStats& stats() const { return stats_; }
  const LiveClock& clock() const { return clock_; }
  LiveMode mode() const { return options_.mode; }
  /// Reactor worker count; 0 in thread-per-link mode.
  std::size_t worker_count() const {
    return reactor_ ? reactor_->worker_count() : 0;
  }
  /// Directed subscribed links the runtime serves (either mode).
  std::size_t link_count() const { return link_count_; }

 private:
  struct LinkWorker;

  /// Running totals backing the per-broker average message size (eq. 6).
  struct SizeTotal {
    std::atomic<double> kb{0.0};
    std::atomic<std::size_t> count{0};
  };

  void receiver_loop(BrokerId broker);
  void sender_loop(LinkWorker& worker);

  const Topology* topology_;
  const RoutingFabric* fabric_;
  const Strategy* strategy_;
  LiveOptions options_;

  LiveClock clock_;
  LiveStats stats_;

  /// Per-broker downstream links (ascending neighbour order): each
  /// receiver's / reactor broker's FanOutGrouper binding.
  std::vector<std::vector<LinkRef>> out_links_;
  std::size_t link_count_ = 0;

  // ---- Reactor mode ----
  std::unique_ptr<Reactor> reactor_;

  // ---- Thread-per-link mode ----
  std::vector<std::unique_ptr<Channel<std::shared_ptr<const Message>>>>
      inboxes_;
  std::vector<std::unique_ptr<SizeTotal>> size_totals_;
  std::vector<std::unique_ptr<LinkWorker>> links_;
  /// Flat per-edge worker table (nullptr where the link carries no
  /// subscriptions); the edge ids in a receiver's fan-out groups index it.
  EdgeMap<LinkWorker*> link_by_edge_;
  std::vector<std::thread> threads_;

  std::atomic<std::size_t> outstanding_{0};
  /// Idempotence latch for stop(); senders watch stopping_, which is
  /// raised only after the receivers have been joined (see stop()).
  std::atomic<bool> stop_started_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<MessageId> next_message_id_{0};
};

}  // namespace bdps
