// Live broker overlay — event-driven reactor, in-process or socket-backed.
//
// Both modes drive the *same* engine the discrete-event simulator proves:
// OutputQueue + SchedulerState picks, eq. (11) purges, FanOutGrouper
// admission (publisher mask + activation-window churn filter), deadlines
// checked in (scaled) real time against the LiveClock.  They differ only
// in reach:
//
//   * LiveMode::kReactor (default) — a fixed pool of N workers
//     (runtime/reactor.h): brokers are assigned to workers with the
//     sharded engine's ShardPlan, per-broker Rx and per-link Tx state
//     machines sleep as timers in a hierarchical wheel
//     (common/timer_wheel.h), and cross-worker handoff rides SpscQueue
//     mailboxes plus an epoch/condvar wake protocol.  Thread count is
//     hardware-sized, so one process serves 10k+ links.  (The old
//     thread-per-link oracle this mode was differentially tested against
//     is retired; the reactor is now the in-process reference the socket
//     mode diffs against.)
//   * LiveMode::kSocket — one shard of a distributed overlay.  The
//     instance owns the brokers LiveNetOptions::broker_shard assigns to
//     it plus every directed link *leaving* them; a transmission that
//     completes toward a remote broker rides a TCP trunk — loopback by
//     default, real interfaces via LiveNetOptions::bind_host/peer_hosts
//     (net/endpoint.h: epoll loop, per-trunk cumulative-ack reliability,
//     capped-backoff reconnect) instead of a worker mailbox.  Fault
//     replay on a cut edge forces a real disconnect (drop_peer) and the
//     healed trunk re-enters through the same set_link_state path the
//     storm engine drives.
//
// Transmission sampling follows the engines' per-edge RNG stream
// discipline: one stream split from LiveOptions::seed per true EdgeId
// (edge-id order), so a link's draw sequence is a pure function of the
// seed and the topology — independent of worker interleaving, mode, and
// shard layout (each stream is consumed by exactly one shard, the one
// serving the edge).
//
// Outstanding-copy accounting is ownership-transferring (see
// net/endpoint.h): a copy forwarded to a peer keeps its local increment
// until the peer's cumulative ack arrives, while the peer increments
// before acking — summed over shards the counter never transiently hits
// zero mid-flight, so cluster drain is `sum(outstanding) == 0` re-checked
// once for stability.  Single-instance `drain()` blocks on the local
// counter; `stop()` settles unacked trunk copies as losses, then finishes
// pending reactor work and joins all threads.
#pragma once

#include <optional>
#include <thread>
#include <utility>

#include "net/endpoint.h"
#include "runtime/live_broker.h"
#include "runtime/reactor.h"
#include "scheduling/purge.h"
#include "topology/edge_map.h"

namespace bdps {

enum class LiveMode {
  /// Reactor worker pool + timer wheel, whole overlay in-process (default).
  kReactor,
  /// One shard of the overlay; cut edges ride TCP trunks (loopback unless
  /// LiveNetOptions names real hosts).
  kSocket,
};

/// Shard layout + transport knobs for LiveMode::kSocket.
struct LiveNetOptions {
  int shard = 0;
  int shard_count = 1;
  /// Shard id of every broker in the full topology.  Empty = every broker
  /// is local (single-shard socket mode).
  std::vector<std::uint32_t> broker_shard;
  /// Trunk redial backoff: first delay, doubling to the cap.
  double reconnect_initial_ms = 5.0;
  double reconnect_max_ms = 250.0;
  /// IPv4 literal the trunk listener binds ("" = 127.0.0.1 — the
  /// single-host default; "0.0.0.0" = all interfaces for real
  /// multi-machine deployments).
  std::string bind_host;
  /// IPv4 literal dialed per peer shard, indexed by shard id; missing or
  /// empty entries dial loopback.
  std::vector<std::string> peer_hosts;
};

struct LiveOptions {
  TimeMs processing_delay = 2.0;
  PurgePolicy purge;
  /// Simulated milliseconds per real millisecond.
  double speedup = 100.0;
  /// Seeds the per-EdgeId transmission RNG streams.
  std::uint64_t seed = 1;
  LiveMode mode = LiveMode::kReactor;
  /// Reactor worker count; 0 = hardware threads.
  std::size_t workers = 0;
  /// Reactor timer resolution in simulated milliseconds.
  TimeMs wheel_tick_ms = 0.25;
  /// Socket-mode shard layout (ignored by kReactor).
  LiveNetOptions net;
};

class LiveNetwork {
 public:
  /// All referenced objects must outlive the network.  In socket mode the
  /// trunk listener is bound here (trunk_port() is valid immediately);
  /// call connect_trunks() with every shard's port before start().
  LiveNetwork(const Topology* topology, const RoutingFabric* fabric,
              const Strategy* strategy, LiveOptions options);
  ~LiveNetwork();

  LiveNetwork(const LiveNetwork&) = delete;
  LiveNetwork& operator=(const LiveNetwork&) = delete;

  /// Starts the clock and the reactor workers.
  void start();

  /// Publishes a message now (the publish timestamp is taken from the live
  /// clock; `template_message`'s head/size/deadline are kept; the id is
  /// allocated from a process-local counter).  The publisher's edge broker
  /// must be served by this instance.
  void publish(PublisherId publisher, const Message& template_message);

  /// Cluster variant: the caller assigns the message id, so delivery
  /// records align across processes that each pace a slice of the
  /// workload.
  void publish(PublisherId publisher, const Message& template_message,
               MessageId id);

  /// Blocks until no message copies remain in flight *locally*.  For a
  /// multi-shard cluster, quiesce on the sum of outstanding() across
  /// instances instead (a local zero is not stable while a peer still
  /// holds unacked copies toward us).
  void drain();

  /// Fault churn: marks the undirected link (a, b) down or up in both
  /// directions (thread-safe, applied asynchronously by the owning
  /// workers).  While down the link's queue *holds* its copies (the
  /// in-flight transmission timer is cancelled and the copy requeued).
  /// Callers must bring links back up (or rely on purges) before drain(),
  /// or held copies keep it blocked.  Unknown or unserved links are
  /// ignored.  In socket mode a down cut edge also severs its trunk (a
  /// real TCP disconnect); the trunk heals itself with capped backoff and
  /// the edge re-enters service once both the fault is lifted *and* the
  /// trunk is re-established.
  void set_link_state(BrokerId a, BrokerId b, bool up);

  /// Single-direction variant keyed by the true graph's EdgeId (the
  /// vocabulary of CompiledFaults batches).
  void set_edge_state(EdgeId edge, bool up);

  /// Crashes or restarts one broker with the simulator's semantics: the
  /// input queue and every outgoing link queue are wiped (losses), and
  /// arrivals while down are lost.  Ignored for brokers this instance
  /// does not serve.  Fault compilation already folds a broker outage
  /// into its incident edges, so callers replaying CompiledFaults batches
  /// get the link-down half from set_edge_state.
  void set_broker_state(BrokerId broker, bool up);

  /// Stops and joins all threads (idempotent).  Socket mode first stops
  /// the transport and settles never-acked trunk copies as losses so the
  /// reactor workers can observe a zero outstanding count and exit.
  void stop();

  const LiveStats& stats() const { return stats_; }
  const LiveClock& clock() const { return clock_; }
  LiveMode mode() const { return options_.mode; }
  std::size_t worker_count() const {
    return reactor_ ? reactor_->worker_count() : 0;
  }
  /// Directed subscribed links this instance serves.
  std::size_t link_count() const { return link_count_; }

  /// True when `broker` is assigned to this instance's shard.
  bool serves(BrokerId broker) const;
  /// In-flight copies owned by this instance (includes trunk copies not
  /// yet acked by their receiving peer).
  std::size_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

  // ---- Socket mode ----
  /// Trunk listen port (0 unless socket mode).
  std::uint16_t trunk_port() const;
  /// Dials every peer shard; `ports` is indexed by shard id.
  void connect_trunks(const std::vector<std::uint16_t>& ports);
  /// Blocks until every dialed trunk is up (false on timeout).
  bool wait_trunks(std::chrono::milliseconds timeout);
  /// Transport diagnostics (0 unless socket mode).
  std::uint64_t trunk_forwards_sent() const;
  std::uint64_t trunk_forwards_received() const;
  std::uint64_t trunk_reconnects() const;

 private:
  void on_trunk_forward(BrokerId target, const Message& message);
  void on_trunk_acked(std::uint64_t n);
  void on_trunk_peer_state(int peer, bool up);
  int shard_of(BrokerId broker) const;

  const Topology* topology_;
  const RoutingFabric* fabric_;
  const Strategy* strategy_;
  LiveOptions options_;

  LiveClock clock_;
  LiveStats stats_;

  /// Per-broker downstream links (ascending neighbour order): each
  /// reactor broker's FanOutGrouper binding.
  std::vector<std::vector<LinkRef>> out_links_;
  std::size_t link_count_ = 0;

  std::unique_ptr<Reactor> reactor_;

  // ---- Socket mode ----
  std::unique_ptr<NetEndpoint> endpoint_;
  /// Shard id per broker (socket mode; empty otherwise).
  std::vector<std::uint32_t> broker_shard_;
  /// Served cut edges grouped by destination peer shard.
  std::vector<std::vector<EdgeId>> cut_edges_of_peer_;
  /// Effective cut-edge state = !fault_down && trunk_up; both halves flip
  /// from different threads, so the fold is mutex-guarded.
  std::mutex net_state_mutex_;
  std::vector<char> edge_fault_down_;  // indexed by EdgeId (served cuts only)
  std::vector<char> trunk_up_;         // indexed by peer shard

  std::atomic<std::size_t> outstanding_{0};
  bool started_ = false;
  std::atomic<MessageId> next_message_id_{0};
};

}  // namespace bdps
