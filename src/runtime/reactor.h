// Event-driven live runtime: reactor worker pool + timer wheel.
//
// The thread-per-link runtime demonstrates the scheduling engine under real
// concurrency but sleeps an OS thread through every processing delay and
// every transmission — topology size dictates thread count, and a few
// hundred links is the practical ceiling.  The reactor inverts that: a
// fixed pool of N workers (N = hardware threads, not topology size) owns
// per-broker and per-link *state machines*, and every delay is a pending
// timer in a hierarchical wheel (common/timer_wheel.h) over the scaled
// LiveClock.
//
// State machines:
//   * Broker Rx: RxIdle -> Processing.  A deposited message on an idle
//     broker arms a PD timer; the timer's expiry runs the match + fan-out
//     (the same FanOutGrouper/precompute_scores path the simulator broker
//     and the legacy receiver use) and re-arms while input remains —
//     brokers process one message per PD, exactly like the legacy
//     receiver's pop/sleep loop.
//   * Link Tx: TxIdle -> Transmitting.  Enqueueing into an idle link's
//     OutputQueue starts a send inline: purge + take_next under no lock
//     (the owning worker is the only toucher), a sampled duration from the
//     link's per-edge RNG stream, one wheel timer.  The timer's expiry
//     delivers to the downstream broker and pops the next message.
//
// Placement and handoff: brokers are assigned to workers with the sharded
// engine's ShardPlan (greedy edge cut — most fan-outs stay worker-local);
// each directed link lives with its *source* broker's worker, so enqueue,
// pick and purge are always same-worker.  A transmission that completes
// toward a remote broker crosses through the (source worker, destination
// worker) SpscQueue mailbox plus an epoch/condvar wake protocol — the only
// synchronisation in steady state; there are no per-broker blocking
// channels and no per-link locks.
//
// Drain/stop share LiveNetwork's outstanding-copies counter: workers exit
// once stop() was requested and no copy remains in flight, finishing
// queued work first (the legacy semantics).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "broker/fanout.h"
#include "runtime/live_broker.h"
#include "routing/fabric.h"
#include "scheduling/purge.h"
#include "topology/edge_map.h"

namespace bdps {

struct ReactorOptions {
  TimeMs processing_delay = 2.0;
  PurgePolicy purge;
  /// Worker count; 0 = std::thread::hardware_concurrency().  Clamped to
  /// [1, broker count] (the shard plan needs a non-empty shard each).
  std::size_t workers = 0;
  /// Timer-wheel resolution in *simulated* milliseconds.  Deadline checks
  /// use the exact clock, so resolution only quantises when callbacks run;
  /// 0.25 sim ms is far below any PD/transmission scale the paper uses.
  TimeMs wheel_tick_ms = 0.25;
  /// Cross-process serving (socket mode): shard id of every broker in the
  /// full topology (nullptr = everything is local).  A transmission whose
  /// downstream broker lives in another shard is handed to `forwarder`
  /// instead of deposited.  A true return transfers the copy's outstanding
  /// increment to the transport (released when the covering ack arrives);
  /// false means the transport is gone — the reactor settles the copy as a
  /// loss itself.
  const std::vector<std::uint32_t>* broker_shard = nullptr;
  std::uint32_t shard = 0;
  std::function<bool(int, BrokerId, const std::shared_ptr<const Message>&)>
      forwarder;
};

/// One directed overlay link the runtime serves: resolved by LiveNetwork
/// from the routing tables, with the link's dedicated RNG stream (split
/// from LiveOptions::seed once per true EdgeId — the engines' discipline).
struct LiveLinkSpec {
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
  EdgeId edge = kNoEdge;
  LinkParams params;
  Rng rng;
};

class Reactor {
 public:
  /// All referenced objects must outlive the reactor.  `out_links` is the
  /// per-broker ascending LinkRef rows the fan-out groupers bind to;
  /// `outstanding` is LiveNetwork's in-flight copy counter (shared so
  /// drain() sees both modes identically).
  Reactor(const Topology* topology, const RoutingFabric* fabric,
          const Strategy* strategy, ReactorOptions options, LiveClock* clock,
          LiveStats* stats, std::atomic<std::size_t>* outstanding,
          std::vector<LiveLinkSpec> links,
          const std::vector<std::vector<LinkRef>>* out_links);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void start();

  /// Hands a published message to its edge broker's worker; false once
  /// stopped (the caller unwinds its outstanding increment, mirroring the
  /// closed-channel contract of the legacy mode).
  bool publish(BrokerId target, std::shared_ptr<const Message> message);

  /// Requests shutdown and joins the workers; pending copies are finished
  /// first.  Idempotent.
  void stop();

  std::size_t worker_count() const { return workers_.size(); }

  /// Marks one directed served link up or down (fault churn; thread-safe,
  /// applied asynchronously by the owning worker).  Down cancels the
  /// pending transmission timer and requeues the in-flight copy — the
  /// frame was cut mid-wire — and the queue then *holds* until link-up
  /// re-arms it.  Unknown or unserved edges are ignored.
  void set_link_state(EdgeId edge, bool up);

  /// Crashes or restarts one broker (thread-safe, applied asynchronously
  /// by the owning worker).  A crash is the simulator's semantics: the
  /// input queue and every outgoing OutputQueue are wiped (copies counted
  /// as losses), the pending rx/tx timers die with them, and later
  /// arrivals are lost until the broker comes back up.  The *links* of a
  /// crashed broker are governed separately via set_link_state — fault
  /// compilation folds a broker outage into its incident edges.
  void set_broker_state(BrokerId broker, bool up);

 private:
  struct Inbound;
  struct TimerEvent;
  struct BrokerState;
  struct LinkState;
  struct Worker;
  struct Command {
    enum class Kind : std::uint8_t { kLink, kBroker };
    Kind kind = Kind::kLink;
    std::uint32_t index = 0;  // links_ index (kLink) or BrokerId (kBroker).
    bool up = false;
  };

  void apply_commands(Worker& worker);
  void apply_broker_command(Worker& worker, BrokerId broker, bool up);

  std::uint64_t tick_ceil(TimeMs at) const;
  void worker_loop(Worker& worker);
  void drain_inbound(Worker& worker);
  void advance_wheel(Worker& worker);
  void park(Worker& worker, std::uint64_t epoch_snapshot);
  void wake(Worker& worker);
  void deposit(Worker& worker, BrokerId broker,
               std::shared_ptr<const Message> message);
  void schedule_rx(Worker& worker, BrokerId broker);
  void on_rx_done(Worker& worker, BrokerId broker);
  void start_transmission(Worker& worker, std::uint32_t link_index);
  void on_tx_done(Worker& worker, std::uint32_t link_index);

  const Topology* topology_;
  const RoutingFabric* fabric_;
  const Strategy* strategy_;
  ReactorOptions options_;
  LiveClock* clock_;
  LiveStats* stats_;
  std::atomic<std::size_t>* outstanding_;

  std::vector<std::unique_ptr<BrokerState>> brokers_;
  std::vector<std::unique_ptr<LinkState>> links_;
  /// Flat per-edge index into links_ (-1 where no subscription routes).
  EdgeMap<std::int32_t> link_by_edge_;
  /// Served links grouped by their source broker (crash wipes walk this).
  std::vector<std::vector<std::uint32_t>> links_of_broker_;
  /// ShardPlan assignment: which worker owns each broker (and its links).
  std::vector<std::uint32_t> owner_of_broker_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace bdps
