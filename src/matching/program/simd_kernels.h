// Kernel table shared between the per-ISA translation units and the
// dispatcher (simd.h / simd.cpp).
//
// This header is deliberately minimal — <cstddef>/<cstdint> only, no STL,
// no inline functions.  The per-ISA .cpp files are compiled with their own
// instruction-set flags (e.g. -mavx2 on simd_avx2.cpp); any inline function
// they pulled in from a shared header would be emitted as a comdat compiled
// for that ISA, and the linker is free to pick that copy for every other
// translation unit — an illegal-instruction time bomb on machines without
// the extension.  Keeping the per-ISA TUs leaf-only (raw pointers in, raw
// stores out) is what makes runtime dispatch sound.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bdps::matching::program::simd {

/// One evaluation kernel family.  All three entry points are exact: for
/// every input (including NaN, ±inf, denormals and a partial final vector
/// lane) they produce byte-identical outputs to the portable kernel, which
/// in turn mirrors the scalar semantics documented in program.h.
struct Kernel {
  const char* name;  // "avx2", "sse2", "neon", "portable".

  /// Interval pass over one slot's contiguous SoA run:
  ///   counts[member[i]] += (lo[i] <= v && v <= hi[i])  for i in [0, n).
  /// Compares are IEEE ordered: a NaN v passes no test (the scalar `<=`
  /// behaviour the equivalence contract is written against).
  void (*iv_accumulate)(const double* lo, const double* hi,
                        const std::uint32_t* member, std::size_t n, double v,
                        std::uint16_t* counts);

  /// String pass over one slot's contiguous run:
  ///   counts[member[i]] += (ids[i] == id)  for i in [0, n).
  void (*str_accumulate)(const std::uint32_t* ids,
                         const std::uint32_t* member, std::size_t n,
                         std::uint32_t id, std::uint16_t* counts);

  /// Bulk verdict reduction: matched[m] = (counts[m] == required[m]) ? 1 : 0
  /// for m in [0, n).  Always writes exactly 0 or 1 so verdict buffers are
  /// byte-comparable across kernels.
  void (*reduce_verdicts)(const std::uint16_t* counts,
                          const std::uint16_t* required, std::size_t n,
                          std::uint8_t* matched);
};

namespace detail {
/// Per-ISA kernel getters.  Each returns nullptr when its TU was compiled
/// without the ISA (wrong architecture or missing compiler support);
/// portable_kernel() never does.  Runtime CPU support is the dispatcher's
/// problem, not theirs.
const Kernel* portable_kernel();
const Kernel* sse2_kernel();
const Kernel* avx2_kernel();
const Kernel* neon_kernel();
}  // namespace detail

}  // namespace bdps::matching::program::simd
