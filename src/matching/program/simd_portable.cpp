// Portable unrolled-scalar kernel: the semantic reference every SIMD
// kernel must match byte-for-byte, and the fallback on ISAs without a
// dedicated TU.  Built unconditionally with the project's baseline flags.
#include "matching/program/simd_kernels.h"

namespace bdps::matching::program::simd {
namespace {

void iv_accumulate_portable(const double* lo, const double* hi,
                            const std::uint32_t* member, std::size_t n,
                            double v, std::uint16_t* counts) {
  // 4x unrolled fused compare+accumulate.  The compares are branch-free
  // ordered `<=` (NaN v fails both), matching the interpreter exactly;
  // independent hit computations give the compiler four parallel chains
  // even though the scatter-adds stay scalar.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint16_t h0 =
        static_cast<std::uint16_t>(static_cast<int>(lo[i + 0] <= v) &
                                   static_cast<int>(v <= hi[i + 0]));
    const std::uint16_t h1 =
        static_cast<std::uint16_t>(static_cast<int>(lo[i + 1] <= v) &
                                   static_cast<int>(v <= hi[i + 1]));
    const std::uint16_t h2 =
        static_cast<std::uint16_t>(static_cast<int>(lo[i + 2] <= v) &
                                   static_cast<int>(v <= hi[i + 2]));
    const std::uint16_t h3 =
        static_cast<std::uint16_t>(static_cast<int>(lo[i + 3] <= v) &
                                   static_cast<int>(v <= hi[i + 3]));
    counts[member[i + 0]] = static_cast<std::uint16_t>(counts[member[i + 0]] + h0);
    counts[member[i + 1]] = static_cast<std::uint16_t>(counts[member[i + 1]] + h1);
    counts[member[i + 2]] = static_cast<std::uint16_t>(counts[member[i + 2]] + h2);
    counts[member[i + 3]] = static_cast<std::uint16_t>(counts[member[i + 3]] + h3);
  }
  for (; i < n; ++i) {
    const std::uint16_t h =
        static_cast<std::uint16_t>(static_cast<int>(lo[i] <= v) &
                                   static_cast<int>(v <= hi[i]));
    counts[member[i]] = static_cast<std::uint16_t>(counts[member[i]] + h);
  }
}

void str_accumulate_portable(const std::uint32_t* ids,
                             const std::uint32_t* member, std::size_t n,
                             std::uint32_t id, std::uint16_t* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    counts[member[i]] =
        static_cast<std::uint16_t>(counts[member[i]] + (ids[i] == id));
  }
}

void reduce_verdicts_portable(const std::uint16_t* counts,
                              const std::uint16_t* required, std::size_t n,
                              std::uint8_t* matched) {
  for (std::size_t i = 0; i < n; ++i) {
    matched[i] = static_cast<std::uint8_t>(counts[i] == required[i]);
  }
}

const Kernel kPortable = {
    "portable",
    &iv_accumulate_portable,
    &str_accumulate_portable,
    &reduce_verdicts_portable,
};

}  // namespace

namespace detail {
const Kernel* portable_kernel() { return &kPortable; }
}  // namespace detail

}  // namespace bdps::matching::program::simd
