#include "matching/program/program.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace bdps::matching::program {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One member's canonical constraint on one attribute while compiling:
/// the running interval intersection and/or the required string value.
struct AttrConstraint {
  bool has_interval = false;
  double lo = -kInf;
  double hi = kInf;  // Inclusive.
  bool has_string = false;
  std::string value;
  bool never = false;  // Contradiction on this attribute.
};

/// Folds `pred` into `c`.  False when the predicate is outside the
/// compiled language (the member must fall back to Filter::matches).
bool fold_predicate(const Predicate& pred, AttrConstraint& c) {
  if (pred.op == Op::kEq && pred.operand.is_string()) {
    if (c.has_string && c.value != pred.operand.as_string()) c.never = true;
    c.has_string = true;
    c.value = pred.operand.as_string();
    return true;
  }
  if (!pred.operand.is_number()) return false;
  const double v = pred.operand.as_double();
  if (!std::isfinite(v)) return false;
  switch (pred.op) {
    case Op::kLt:
      c.hi = std::min(c.hi, std::nextafter(v, -kInf));
      break;
    case Op::kLe:
      c.hi = std::min(c.hi, v);
      break;
    case Op::kGt:
      c.lo = std::max(c.lo, std::nextafter(v, kInf));
      break;
    case Op::kGe:
      c.lo = std::max(c.lo, v);
      break;
    case Op::kEq:
      c.lo = std::max(c.lo, v);
      c.hi = std::min(c.hi, v);
      break;
    case Op::kInRange: {
      if (!pred.operand2.is_number()) return false;
      const double v2 = pred.operand2.as_double();
      if (!std::isfinite(v2)) return false;
      c.lo = std::max(c.lo, v);
      c.hi = std::min(c.hi, v2);
      break;
    }
    case Op::kNe:
      return false;  // "!= c" is two disjoint intervals; interpret it.
  }
  c.has_interval = true;
  return true;
}

/// Per-slot test runs accumulated across members before the SoA arrays
/// are laid out (std::map: deterministic slot order by attribute name).
struct SlotBuild {
  std::vector<std::pair<double, double>> intervals;  // (lo, hi) inclusive.
  std::vector<std::uint32_t> iv_members;
  std::vector<std::string> strings;
  std::vector<std::uint32_t> str_members;
};

}  // namespace

PredicateProgram PredicateProgram::compile(
    const std::vector<const Filter*>& members) {
  PredicateProgram prog;
  prog.required_.assign(members.size(), 0);

  std::map<std::string, SlotBuild> builds;
  for (std::uint32_t m = 0; m < members.size(); ++m) {
    const Filter& filter = *members[m];
    std::map<std::string, AttrConstraint> attrs;
    bool fallback = false;
    for (const Predicate& pred : filter.predicates()) {
      if (!fold_predicate(pred, attrs[pred.attribute])) {
        fallback = true;
        break;
      }
    }
    // A counting member needs one test per constrained attribute; heads
    // that big do not occur, but degrade safely rather than overflow.
    if (!fallback && attrs.size() >= kNever) fallback = true;
    if (fallback) {
      prog.required_[m] = kNever;
      prog.fallbacks_.emplace_back(m, members[m]);
      continue;
    }
    bool never = false;
    for (const auto& [name, c] : attrs) {
      // A value is one type: requiring both a string equality and a
      // numeric interval on the same attribute is a contradiction, as is
      // an empty interval.
      if (c.never || (c.has_string && c.has_interval) ||
          (c.has_interval && c.lo > c.hi)) {
        never = true;
        break;
      }
    }
    if (never) {
      prog.required_[m] = kNever;  // No tests emitted: count stays short.
      continue;
    }
    for (const auto& [name, c] : attrs) {
      SlotBuild& slot = builds[name];
      if (c.has_string) {
        slot.strings.push_back(c.value);
        slot.str_members.push_back(m);
      } else {
        slot.intervals.emplace_back(c.lo, c.hi);
        slot.iv_members.push_back(m);
      }
    }
    prog.required_[m] = static_cast<std::uint16_t>(attrs.size());
  }

  // Flatten to the SoA layout: per slot, a contiguous interval run and a
  // contiguous string run.
  prog.slots_.reserve(builds.size());
  for (auto& [name, build] : builds) {
    Slot slot;
    slot.name = name;
    slot.iv_begin = static_cast<std::uint32_t>(prog.iv_lo_.size());
    for (std::size_t i = 0; i < build.intervals.size(); ++i) {
      prog.iv_lo_.push_back(build.intervals[i].first);
      prog.iv_hi_.push_back(build.intervals[i].second);
      prog.iv_member_.push_back(build.iv_members[i]);
    }
    slot.iv_end = static_cast<std::uint32_t>(prog.iv_lo_.size());
    slot.str_begin = static_cast<std::uint32_t>(prog.str_id_.size());
    for (std::size_t i = 0; i < build.strings.size(); ++i) {
      const auto inserted = prog.interned_.emplace(
          build.strings[i], static_cast<std::uint32_t>(prog.interned_.size()));
      prog.str_id_.push_back(inserted.first->second);
      prog.str_member_.push_back(build.str_members[i]);
    }
    slot.str_end = static_cast<std::uint32_t>(prog.str_id_.size());
    prog.slots_.push_back(std::move(slot));
  }
  return prog;
}

void PredicateProgram::evaluate(const Message& message,
                                ProgramEval& eval) const {
  eval.counts.assign(required_.size(), 0);
  eval.hits.resize(iv_lo_.size());
  std::uint16_t* counts = eval.counts.data();

  for (const Slot& slot : slots_) {
    const Value* value = message.find(slot.name);
    if (value == nullptr) continue;
    if (value->is_number()) {
      const double v = value->as_double();
      const double* lo = iv_lo_.data();
      const double* hi = iv_hi_.data();
      std::uint8_t* hits = eval.hits.data();
      // Two passes: the compare loop has no data dependences and
      // auto-vectorizes; the scatter-add stays scalar but branch-free.
      for (std::uint32_t i = slot.iv_begin; i < slot.iv_end; ++i) {
        hits[i] = static_cast<std::uint8_t>(
            static_cast<int>(lo[i] <= v) & static_cast<int>(v <= hi[i]));
      }
      const std::uint32_t* mem = iv_member_.data();
      for (std::uint32_t i = slot.iv_begin; i < slot.iv_end; ++i) {
        counts[mem[i]] = static_cast<std::uint16_t>(counts[mem[i]] + hits[i]);
      }
    } else {
      std::uint32_t id = kUnknownString;
      const auto it = interned_.find(value->as_string());
      if (it != interned_.end()) id = it->second;
      const std::uint32_t* ids = str_id_.data();
      const std::uint32_t* mem = str_member_.data();
      for (std::uint32_t i = slot.str_begin; i < slot.str_end; ++i) {
        counts[mem[i]] =
            static_cast<std::uint16_t>(counts[mem[i]] + (ids[i] == id));
      }
    }
  }

  eval.matched.resize(required_.size());
  const std::uint16_t* required = required_.data();
  std::uint8_t* matched = eval.matched.data();
  for (std::size_t m = 0; m < required_.size(); ++m) {
    matched[m] = static_cast<std::uint8_t>(counts[m] == required[m]);
  }
  for (const auto& [m, filter] : fallbacks_) {
    matched[m] = static_cast<std::uint8_t>(filter->matches(message));
  }
}

}  // namespace bdps::matching::program
