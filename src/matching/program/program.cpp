#include "matching/program/program.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "matching/program/simd.h"

namespace bdps::matching::program {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One member's canonical constraint on one attribute while compiling:
/// the running interval intersection and/or the required string value.
struct AttrConstraint {
  bool has_interval = false;
  double lo = -kInf;
  double hi = kInf;  // Inclusive.
  bool has_string = false;
  std::string value;
  bool never = false;  // Contradiction on this attribute.
};

/// Folds `pred` into `c`.  False when the predicate is outside the
/// compiled language (the member must fall back to Filter::matches).
bool fold_predicate(const Predicate& pred, AttrConstraint& c) {
  if (pred.op == Op::kEq && pred.operand.is_string()) {
    if (c.has_string && c.value != pred.operand.as_string()) c.never = true;
    c.has_string = true;
    c.value = pred.operand.as_string();
    return true;
  }
  if (!pred.operand.is_number()) return false;
  const double v = pred.operand.as_double();
  if (!std::isfinite(v)) return false;
  switch (pred.op) {
    case Op::kLt:
      c.hi = std::min(c.hi, std::nextafter(v, -kInf));
      break;
    case Op::kLe:
      c.hi = std::min(c.hi, v);
      break;
    case Op::kGt:
      c.lo = std::max(c.lo, std::nextafter(v, kInf));
      break;
    case Op::kGe:
      c.lo = std::max(c.lo, v);
      break;
    case Op::kEq:
      c.lo = std::max(c.lo, v);
      c.hi = std::min(c.hi, v);
      break;
    case Op::kInRange: {
      if (!pred.operand2.is_number()) return false;
      const double v2 = pred.operand2.as_double();
      if (!std::isfinite(v2)) return false;
      c.lo = std::max(c.lo, v);
      c.hi = std::min(c.hi, v2);
      break;
    }
    case Op::kNe:
      return false;  // "!= c" is two disjoint intervals; interpret it.
  }
  c.has_interval = true;
  return true;
}

/// Per-slot test runs accumulated across members before the SoA arrays
/// are laid out (std::map: deterministic slot order by attribute name).
struct SlotBuild {
  std::vector<std::pair<double, double>> intervals;  // (lo, hi) inclusive.
  std::vector<std::uint32_t> iv_members;
  std::vector<std::string> strings;
  std::vector<std::uint32_t> str_members;
};

}  // namespace

void SlotValues::reset(const Message& message) {
  const std::vector<Attribute>& head = message.head();
  std::size_t capacity = 4;
  while (capacity < head.size() * 2) capacity *= 2;
  table_.assign(capacity, Entry{});
  mask_ = capacity - 1;
  for (const Attribute& attr : head) {
    const std::size_t hash = std::hash<std::string>{}(attr.name);
    std::size_t i = hash & mask_;
    for (;; i = (i + 1) & mask_) {
      Entry& entry = table_[i];
      if (entry.name == nullptr) {
        entry.hash = hash;
        entry.name = &attr.name;
        entry.value = &attr.value;
        break;
      }
      // First occurrence wins on duplicate names (Message::find parity).
      if (entry.hash == hash && *entry.name == attr.name) break;
    }
  }
}

PredicateProgram PredicateProgram::compile(
    const std::vector<const Filter*>& members) {
  PredicateProgram prog;
  prog.required_.assign(members.size(), 0);

  std::map<std::string, SlotBuild> builds;
  for (std::uint32_t m = 0; m < members.size(); ++m) {
    const Filter& filter = *members[m];
    std::map<std::string, AttrConstraint> attrs;
    bool fallback = false;
    for (const Predicate& pred : filter.predicates()) {
      if (!fold_predicate(pred, attrs[pred.attribute])) {
        fallback = true;
        break;
      }
    }
    // A counting member needs one test per constrained attribute; heads
    // that big do not occur, but degrade safely rather than overflow.
    if (!fallback && attrs.size() >= kNever) fallback = true;
    if (fallback) {
      prog.required_[m] = kNever;
      prog.fallbacks_.emplace_back(m, members[m]);
      continue;
    }
    bool never = false;
    for (const auto& [name, c] : attrs) {
      // A value is one type: requiring both a string equality and a
      // numeric interval on the same attribute is a contradiction, as is
      // an empty interval.
      if (c.never || (c.has_string && c.has_interval) ||
          (c.has_interval && c.lo > c.hi)) {
        never = true;
        break;
      }
    }
    if (never) {
      prog.required_[m] = kNever;  // No tests emitted: count stays short.
      continue;
    }
    for (const auto& [name, c] : attrs) {
      SlotBuild& slot = builds[name];
      if (c.has_string) {
        slot.strings.push_back(c.value);
        slot.str_members.push_back(m);
      } else {
        slot.intervals.emplace_back(c.lo, c.hi);
        slot.iv_members.push_back(m);
      }
    }
    prog.required_[m] = static_cast<std::uint16_t>(attrs.size());
  }

  // Flatten to the SoA layout: per slot, a contiguous interval run and a
  // contiguous string run.
  prog.slots_.reserve(builds.size());
  for (auto& [name, build] : builds) {
    Slot slot;
    slot.name = name;
    slot.name_hash = std::hash<std::string>{}(name);
    slot.iv_begin = static_cast<std::uint32_t>(prog.iv_lo_.size());
    for (std::size_t i = 0; i < build.intervals.size(); ++i) {
      prog.iv_lo_.push_back(build.intervals[i].first);
      prog.iv_hi_.push_back(build.intervals[i].second);
      prog.iv_member_.push_back(build.iv_members[i]);
    }
    slot.iv_end = static_cast<std::uint32_t>(prog.iv_lo_.size());
    slot.str_begin = static_cast<std::uint32_t>(prog.str_id_.size());
    for (std::size_t i = 0; i < build.strings.size(); ++i) {
      const auto inserted = prog.interned_.emplace(
          build.strings[i], static_cast<std::uint32_t>(prog.interned_.size()));
      prog.str_id_.push_back(inserted.first->second);
      prog.str_member_.push_back(build.str_members[i]);
    }
    slot.str_end = static_cast<std::uint32_t>(prog.str_id_.size());
    prog.slots_.push_back(std::move(slot));
  }
  return prog;
}

void PredicateProgram::evaluate(const Message& message,
                                const SlotValues& values,
                                ProgramEval& eval) const {
  const simd::Kernel& kernel = simd::active_kernel();
  eval.counts.assign(required_.size(), 0);
  std::uint16_t* counts = eval.counts.data();

  for (const Slot& slot : slots_) {
    const Value* value = values.find(slot.name, slot.name_hash);
    if (value == nullptr) continue;
    if (value->is_number()) {
      kernel.iv_accumulate(iv_lo_.data() + slot.iv_begin,
                           iv_hi_.data() + slot.iv_begin,
                           iv_member_.data() + slot.iv_begin,
                           slot.iv_end - slot.iv_begin, value->as_double(),
                           counts);
    } else {
      std::uint32_t id = kUnknownString;
      const auto it = interned_.find(value->as_string());
      if (it != interned_.end()) id = it->second;
      kernel.str_accumulate(str_id_.data() + slot.str_begin,
                            str_member_.data() + slot.str_begin,
                            slot.str_end - slot.str_begin, id, counts);
    }
  }

  eval.matched.resize(required_.size());
  kernel.reduce_verdicts(counts, required_.data(), required_.size(),
                         eval.matched.data());
  std::uint8_t* matched = eval.matched.data();
  for (const auto& [m, filter] : fallbacks_) {
    matched[m] = static_cast<std::uint8_t>(filter->matches(message));
  }
}

}  // namespace bdps::matching::program
