// NEON kernel — the aarch64 baseline (Advanced SIMD is mandatory on
// AArch64, so no extra compile flags).  8 interval tests per iteration via
// four 2-lane ordered compares folded into one bitmask, 4-wide interned-id
// compares, 8-wide verdict narrowing.
//
// Leaf-only TU: raw pointers in, stores out (see simd_kernels.h).
#include "matching/program/simd_kernels.h"

#if defined(__aarch64__) || defined(_M_ARM64)

#include <arm_neon.h>

namespace bdps::matching::program::simd {
namespace {

inline unsigned pair_mask(uint64x2_t in, unsigned shift) {
  // Each lane is all-ones or all-zero; fold to two bits.
  return static_cast<unsigned>((vgetq_lane_u64(in, 0) & 1u) |
                               ((vgetq_lane_u64(in, 1) & 1u) << 1))
         << shift;
}

void iv_accumulate_neon(const double* lo, const double* hi,
                        const std::uint32_t* member, std::size_t n, double v,
                        std::uint16_t* counts) {
  const float64x2_t vv = vdupq_n_f64(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vcleq_f64 lowers to FCMGE (ordered): false on NaN, the scalar `<=`.
    unsigned mask = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const uint64x2_t in =
          vandq_u64(vcleq_f64(vld1q_f64(lo + i + 2 * k), vv),
                    vcleq_f64(vv, vld1q_f64(hi + i + 2 * k)));
      mask |= pair_mask(in, 2 * k);
    }
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i < n; ++i) {
    const std::uint16_t h =
        static_cast<std::uint16_t>(static_cast<int>(lo[i] <= v) &
                                   static_cast<int>(v <= hi[i]));
    counts[member[i]] = static_cast<std::uint16_t>(counts[member[i]] + h);
  }
}

void str_accumulate_neon(const std::uint32_t* ids, const std::uint32_t* member,
                         std::size_t n, std::uint32_t id,
                         std::uint16_t* counts) {
  const uint32x4_t vid = vdupq_n_u32(id);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(ids + i), vid);
    // Narrow 4x32 -> 4x16 then fold the 64-bit lane into a 4-bit mask.
    const uint16x4_t narrow = vmovn_u32(eq);
    std::uint64_t bits = vget_lane_u64(vreinterpret_u64_u16(narrow), 0);
    unsigned mask = static_cast<unsigned>((bits & 1u) | ((bits >> 15) & 2u) |
                                          ((bits >> 30) & 4u) |
                                          ((bits >> 45) & 8u));
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i < n; ++i) {
    counts[member[i]] =
        static_cast<std::uint16_t>(counts[member[i]] + (ids[i] == id));
  }
}

void reduce_verdicts_neon(const std::uint16_t* counts,
                          const std::uint16_t* required, std::size_t n,
                          std::uint8_t* matched) {
  std::size_t i = 0;
  const uint8x8_t one = vdup_n_u8(1);
  for (; i + 8 <= n; i += 8) {
    const uint16x8_t eq =
        vceqq_u16(vld1q_u16(counts + i), vld1q_u16(required + i));
    // Narrow 0xFFFF/0 lanes to 0xFF/0 bytes, normalize to 0/1.
    vst1_u8(matched + i, vand_u8(vmovn_u16(eq), one));
  }
  for (; i < n; ++i) {
    matched[i] = static_cast<std::uint8_t>(counts[i] == required[i]);
  }
}

const Kernel kNeon = {
    "neon",
    &iv_accumulate_neon,
    &str_accumulate_neon,
    &reduce_verdicts_neon,
};

}  // namespace

namespace detail {
const Kernel* neon_kernel() { return &kNeon; }
}  // namespace detail

}  // namespace bdps::matching::program::simd

#else  // Not an AArch64 target: stub the getter.

namespace bdps::matching::program::simd::detail {
const Kernel* neon_kernel() { return nullptr; }
}  // namespace bdps::matching::program::simd::detail

#endif
