// AVX2 kernel: 16 interval tests per iteration (four 4-lane ordered
// compares folded into one 16-bit movemask), 8-wide interned-id compares,
// and 16-wide verdict reduction over the uint16 count vectors.
//
// This TU is compiled with -mavx2 (set per-source in CMakeLists.txt, only
// on x86-64 and only when the compiler supports the flag) and must stay
// leaf-only — no STL, no shared inline functions — so the linker can never
// leak AVX2 code into call sites reached on non-AVX2 machines (see
// simd_kernels.h).  Whether the *running* CPU has AVX2 is checked by the
// dispatcher before this kernel is ever installed.
#include "matching/program/simd_kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace bdps::matching::program::simd {
namespace {

void iv_accumulate_avx2(const double* lo, const double* hi,
                        const std::uint32_t* member, std::size_t n, double v,
                        std::uint16_t* counts) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // _CMP_LE_OQ: ordered quiet <= — false when either side is NaN, the
    // exact scalar semantics the equivalence contract pins.
    unsigned mask = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(lo + i + 4 * k), vv,
                                       _CMP_LE_OQ);
      const __m256d le = _mm256_cmp_pd(vv, _mm256_loadu_pd(hi + i + 4 * k),
                                       _CMP_LE_OQ);
      mask |= static_cast<unsigned>(_mm256_movemask_pd(_mm256_and_pd(ge, le)))
              << (4 * k);
    }
    // Sparse scatter: hot programs mostly miss, so the typical block is
    // mask == 0 and costs one test; hits pay one ctz-indexed add each.
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(lo + i), vv, _CMP_LE_OQ);
    const __m256d le = _mm256_cmp_pd(vv, _mm256_loadu_pd(hi + i), _CMP_LE_OQ);
    unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_and_pd(ge, le)));
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i < n; ++i) {
    const std::uint16_t h =
        static_cast<std::uint16_t>(static_cast<int>(lo[i] <= v) &
                                   static_cast<int>(v <= hi[i]));
    counts[member[i]] = static_cast<std::uint16_t>(counts[member[i]] + h);
  }
}

void str_accumulate_avx2(const std::uint32_t* ids, const std::uint32_t* member,
                         std::size_t n, std::uint32_t id,
                         std::uint16_t* counts) {
  const __m256i vid = _mm256_set1_epi32(static_cast<int>(id));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i eq = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i)), vid);
    unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i < n; ++i) {
    counts[member[i]] =
        static_cast<std::uint16_t>(counts[member[i]] + (ids[i] == id));
  }
}

void reduce_verdicts_avx2(const std::uint16_t* counts,
                          const std::uint16_t* required, std::size_t n,
                          std::uint8_t* matched) {
  std::size_t i = 0;
  const __m128i one = _mm_set1_epi8(1);
  for (; i + 16 <= n; i += 16) {
    const __m256i eq = _mm256_cmpeq_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(required + i)));
    // Pack the two 128-bit halves in order: signed saturation keeps 0xFFFF
    // lanes at 0xFF, `& 1` normalizes to the portable kernel's 0/1 bytes.
    const __m128i bytes =
        _mm_and_si128(_mm_packs_epi16(_mm256_castsi256_si128(eq),
                                      _mm256_extracti128_si256(eq, 1)),
                      one);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(matched + i), bytes);
  }
  for (; i < n; ++i) {
    matched[i] = static_cast<std::uint8_t>(counts[i] == required[i]);
  }
}

const Kernel kAvx2 = {
    "avx2",
    &iv_accumulate_avx2,
    &str_accumulate_avx2,
    &reduce_verdicts_avx2,
};

}  // namespace

namespace detail {
const Kernel* avx2_kernel() { return &kAvx2; }
}  // namespace detail

}  // namespace bdps::matching::program::simd

#else  // TU built without AVX2 (non-x86 target or unsupported flag).

namespace bdps::matching::program::simd::detail {
const Kernel* avx2_kernel() { return nullptr; }
}  // namespace bdps::matching::program::simd::detail

#endif
