#include "matching/program/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bdps::matching::program::simd {

namespace {

/// True when the *running* CPU can execute `kernel`.  Compile-time
/// availability is already settled: a getter returning non-null means the
/// TU was built for an ISA the target architecture could have.
bool runtime_supports(const Kernel* kernel) {
  if (kernel == nullptr) return false;
#if defined(__x86_64__) || defined(_M_X64)
  if (std::strcmp(kernel->name, "avx2") == 0) {
    return __builtin_cpu_supports("avx2") != 0;
  }
#endif
  // sse2 is the x86-64 baseline, neon the aarch64 baseline, portable runs
  // anywhere — non-null getter implies runtime support.
  return true;
}

/// Dispatch-preference order; portable last so it is the fallback.
const Kernel* kernel_slot(std::size_t i) {
  switch (i) {
    case 0: return detail::avx2_kernel();
    case 1: return detail::neon_kernel();
    case 2: return detail::sse2_kernel();
    default: return detail::portable_kernel();
  }
}
constexpr std::size_t kKernelSlots = 4;

const Kernel* find_kernel(const char* name) {
  for (std::size_t i = 0; i < kKernelSlots; ++i) {
    const Kernel* k = kernel_slot(i);
    if (k != nullptr && std::strcmp(k->name, name) == 0) {
      return runtime_supports(k) ? k : nullptr;
    }
  }
  return nullptr;
}

/// Environment pin first, then the best runtime-supported kernel.  An
/// unknown or unsupported BDPS_SIMD_KERNEL value is ignored (a bad env var
/// must never turn into wrong answers or a crash).
const Kernel* auto_resolve() {
  if (const char* env = std::getenv("BDPS_SIMD_KERNEL")) {
    if (const Kernel* k = find_kernel(env)) return k;
  }
  for (std::size_t i = 0; i < kKernelSlots; ++i) {
    const Kernel* k = kernel_slot(i);
    if (runtime_supports(k)) return k;
  }
  return detail::portable_kernel();  // Unreachable: portable always resolves.
}

std::atomic<const Kernel*> g_active{nullptr};

}  // namespace

const Kernel& active_kernel() {
  const Kernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = auto_resolve();
    // Racing first calls may both resolve; the result is identical either
    // way, so a plain store is fine — but CAS keeps a concurrent
    // force_kernel() from being overwritten by a late resolver.
    const Kernel* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, k,
                                          std::memory_order_acq_rel)) {
      k = expected;
    }
  }
  return *k;
}

const char* active_kernel_name() { return active_kernel().name; }

std::vector<const Kernel*> available_kernels() {
  std::vector<const Kernel*> out;
  for (std::size_t i = 0; i < kKernelSlots; ++i) {
    const Kernel* k = kernel_slot(i);
    if (runtime_supports(k)) out.push_back(k);
  }
  return out;
}

bool force_kernel(const char* name) {
  if (name == nullptr) {
    g_active.store(auto_resolve(), std::memory_order_release);
    return true;
  }
  const Kernel* k = find_kernel(name);
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

}  // namespace bdps::matching::program::simd
