// SSE2 kernel — the x86-64 baseline (every x86-64 CPU has SSE2, so this
// TU needs no extra compile flags).  8 interval tests per iteration via
// four 2-lane ordered compares folded into one movemask; set bits drive a
// sparse ctz scatter, so the common all-miss block costs one branch.
//
// Leaf-only TU: raw pointers in, stores out (see simd_kernels.h).
#include "matching/program/simd_kernels.h"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(_M_X64))

#include <emmintrin.h>

namespace bdps::matching::program::simd {
namespace {

void iv_accumulate_sse2(const double* lo, const double* hi,
                        const std::uint32_t* member, std::size_t n, double v,
                        std::uint16_t* counts) {
  const __m128d vv = _mm_set1_pd(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // _mm_cmple_pd is the ordered-quiet CMPLEPD: false on NaN, exactly the
    // scalar `<=`.
    const __m128d in0 = _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(lo + i + 0), vv),
                                   _mm_cmple_pd(vv, _mm_loadu_pd(hi + i + 0)));
    const __m128d in1 = _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(lo + i + 2), vv),
                                   _mm_cmple_pd(vv, _mm_loadu_pd(hi + i + 2)));
    const __m128d in2 = _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(lo + i + 4), vv),
                                   _mm_cmple_pd(vv, _mm_loadu_pd(hi + i + 4)));
    const __m128d in3 = _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(lo + i + 6), vv),
                                   _mm_cmple_pd(vv, _mm_loadu_pd(hi + i + 6)));
    unsigned mask = static_cast<unsigned>(_mm_movemask_pd(in0)) |
                    (static_cast<unsigned>(_mm_movemask_pd(in1)) << 2) |
                    (static_cast<unsigned>(_mm_movemask_pd(in2)) << 4) |
                    (static_cast<unsigned>(_mm_movemask_pd(in3)) << 6);
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i < n; ++i) {
    const std::uint16_t h =
        static_cast<std::uint16_t>(static_cast<int>(lo[i] <= v) &
                                   static_cast<int>(v <= hi[i]));
    counts[member[i]] = static_cast<std::uint16_t>(counts[member[i]] + h);
  }
}

void str_accumulate_sse2(const std::uint32_t* ids, const std::uint32_t* member,
                         std::size_t n, std::uint32_t id,
                         std::uint16_t* counts) {
  const __m128i vid = _mm_set1_epi32(static_cast<int>(id));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i eq0 = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i + 0)), vid);
    const __m128i eq1 = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i + 4)), vid);
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq0))) |
        (static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq1))) << 4);
    while (mask != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::uint32_t m = member[i + b];
      counts[m] = static_cast<std::uint16_t>(counts[m] + 1);
    }
  }
  for (; i < n; ++i) {
    counts[member[i]] =
        static_cast<std::uint16_t>(counts[member[i]] + (ids[i] == id));
  }
}

void reduce_verdicts_sse2(const std::uint16_t* counts,
                          const std::uint16_t* required, std::size_t n,
                          std::uint8_t* matched) {
  std::size_t i = 0;
  const __m128i one = _mm_set1_epi8(1);
  for (; i + 16 <= n; i += 16) {
    const __m128i eq0 = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i + 0)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(required + i + 0)));
    const __m128i eq1 = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i + 8)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(required + i + 8)));
    // Signed-saturating pack keeps 0xFFFF lanes at 0xFF and zero at zero,
    // so `& 1` yields the exact 0/1 bytes of the portable kernel.
    const __m128i bytes = _mm_and_si128(_mm_packs_epi16(eq0, eq1), one);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(matched + i), bytes);
  }
  for (; i < n; ++i) {
    matched[i] = static_cast<std::uint8_t>(counts[i] == required[i]);
  }
}

const Kernel kSse2 = {
    "sse2",
    &iv_accumulate_sse2,
    &str_accumulate_sse2,
    &reduce_verdicts_sse2,
};

}  // namespace

namespace detail {
const Kernel* sse2_kernel() { return &kSse2; }
}  // namespace detail

}  // namespace bdps::matching::program::simd

#else  // Not an SSE2 target: stub the getter.

namespace bdps::matching::program::simd::detail {
const Kernel* sse2_kernel() { return nullptr; }
}  // namespace bdps::matching::program::simd::detail

#endif
