// Compiled predicate programs: batch evaluation of one message against a
// covering root's member disjuncts.
//
// The matching fabric's read-side cost at scale is covered-member
// re-evaluation: every hit on a hot covering root walks its member list
// through the generic Filter::matches tree — per member a predicate-vector
// walk, per predicate a head scan, a Value variant dispatch and a three-way
// compare.  A PredicateProgram lowers one root's member list (the natural
// compilation unit: immutable once the snapshot is built, evaluated
// together on every root hit) into one flat program evaluated in a single
// pass over the message head:
//
//   * SLOTS — the distinct attribute names any member constrains, each
//     resolved ONCE per evaluation (one Message::find per slot instead of
//     one per predicate per member).
//   * INTERVAL TESTS — every numeric predicate folds into an inclusive
//     interval [lo, hi] per (member, attribute), stored SoA (parallel
//     lo/hi/member arrays, contiguous per slot).  The fold is exact
//     against Value::compare, which compares all numerics as doubles:
//     kLt c -> hi = nextafter(c, -inf), kLe c -> hi = c, kGt c ->
//     lo = nextafter(c, +inf), kGe c -> lo = c, kEq c -> [c, c], kInRange
//     -> [c, c2].  Inclusive (not half-open) bounds are what make the
//     +-inf message values exact: `v <= nextafter(c, -inf)` is v < c for
//     every double incl. infinities, where a half-open `v < hi` would
//     misclassify v = +inf under an unbounded-above interval.
//   * STRING TESTS — string equalities compare interned ids: the message's
//     string value is looked up once per slot, then every test is a single
//     integer compare.
//   * COUNTING — a member matches when its pass count reaches required_
//     [member] (its number of tests).  The inner loops run through the
//     runtime-dispatched SIMD kernels in simd.h: wide ordered compares
//     over the bound SoA folded to a movemask, a sparse ctz-driven
//     scatter into the uint16 count vector, and a bulk compare of counts
//     against required_ for the verdicts.  Every kernel (avx2/sse2/neon/
//     portable) produces byte-identical buffers.
//   * FALLBACKS — predicates outside the compiled language (kNe, string
//     orderings, non-finite operands) keep their member on the interpreter:
//     the program evaluates it via Filter::matches and overrides the
//     counting verdict.  Contradictory members (empty interval, clashing
//     equalities) compile to an unreachable required count and never match.
//
// Equivalence contract: evaluate()'s verdict per member is identical to
// Filter::matches for every message whose numeric values are not NaN.
// (Value::compare reports NaN "equal" to everything, so kLe/kGe/kEq accept
// NaN; interval tests reject it.  The reference counting index draws the
// same line — NaN heads sit outside every engine's equivalence contract.)
//
// Thread-safety: a compiled program is immutable; evaluate() is const and
// takes all mutable state through the caller-owned ProgramEval scratch, so
// any number of readers share one program.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "message/filter.h"
#include "message/message.h"

namespace bdps::matching::program {

/// One message's attribute values resolved ONCE and shared across every
/// program evaluated against it — the fabric's batch entry point: a match
/// that hits hundreds of compiled roots resolves the head a single time
/// instead of once per program per slot.  Open-addressed over name hashes
/// precomputed at program compile time, so a slot lookup is a probe plus
/// at most one string compare instead of a head scan.
///
/// The view borrows the head's strings and values: it must not outlive
/// the message and must be reset() after the message changes.
class SlotValues {
 public:
  /// (Re)binds to `message`'s head.  Duplicate names keep the first
  /// occurrence, mirroring Message::find.
  void reset(const Message& message);

  /// Value of the attribute named `name`, where `hash` is
  /// std::hash<std::string>{}(name); nullptr when absent.
  const Value* find(const std::string& name, std::size_t hash) const {
    if (table_.empty()) return nullptr;
    for (std::size_t i = hash & mask_;; i = (i + 1) & mask_) {
      const Entry& entry = table_[i];
      if (entry.name == nullptr) return nullptr;
      if (entry.hash == hash && *entry.name == name) return entry.value;
    }
  }

 private:
  struct Entry {
    std::size_t hash = 0;
    const std::string* name = nullptr;  // nullptr = empty bucket.
    const Value* value = nullptr;
  };
  std::vector<Entry> table_;
  std::size_t mask_ = 0;
};

/// Caller-owned evaluation scratch (one per reader thread): pass counts,
/// the per-member verdicts, and a slot-value view for the convenience
/// overload of evaluate() (the fabric passes its own shared view).
struct ProgramEval {
  std::vector<std::uint16_t> counts;
  std::vector<std::uint8_t> matched;
  SlotValues values;
};

class PredicateProgram {
 public:
  /// Lowers `members` (one Filter per member, order preserved — verdict m
  /// in ProgramEval::matched refers to members[m]).  The pointed-to
  /// filters must outlive the program: fallback members evaluate through
  /// them at match time.  Never fails — uncompilable members degrade to
  /// fallbacks, never to wrong answers.
  static PredicateProgram compile(const std::vector<const Filter*>& members);

  std::size_t member_count() const { return required_.size(); }
  /// Members evaluated via Filter::matches instead of compiled tests.
  std::size_t fallback_count() const { return fallbacks_.size(); }
  std::size_t interval_test_count() const { return iv_lo_.size(); }
  std::size_t string_test_count() const { return str_id_.size(); }
  std::size_t slot_count() const { return slots_.size(); }

  /// Evaluates every member against `message` in one pass; afterwards
  /// eval.matched[m] != 0 iff members[m]->matches(message) (NaN caveat in
  /// the header comment).  Resolves slots through eval.values.
  void evaluate(const Message& message, ProgramEval& eval) const {
    eval.values.reset(message);
    evaluate(message, eval.values, eval);
  }

  /// Batch entry point: `values` is a caller-owned view already reset()
  /// to `message`, shared across every program evaluated against it.
  /// Verdicts are identical to the convenience overload.
  void evaluate(const Message& message, const SlotValues& values,
                ProgramEval& eval) const;

 private:
  /// One constrained attribute: its contiguous test runs in the SoA
  /// arrays.  A slot carries interval tests, string tests or both (when
  /// different members type the same attribute differently).
  struct Slot {
    std::string name;
    std::size_t name_hash = 0;  // std::hash<std::string>{}(name).
    std::uint32_t iv_begin = 0;
    std::uint32_t iv_end = 0;
    std::uint32_t str_begin = 0;
    std::uint32_t str_end = 0;
  };

  /// required_ value no pass count can reach (members have < 2^16 - 1
  /// tests by construction): contradictory members compile to this.
  static constexpr std::uint16_t kNever = 0xFFFF;
  /// Interned id for "string not in any test" — compares unequal to every
  /// stored id.
  static constexpr std::uint32_t kUnknownString = 0xFFFFFFFFu;

  std::vector<Slot> slots_;
  // Interval tests, SoA: inclusive [lo, hi] bounds and owning member.
  std::vector<double> iv_lo_;
  std::vector<double> iv_hi_;
  std::vector<std::uint32_t> iv_member_;
  // String-equality tests: interned value id and owning member.
  std::vector<std::uint32_t> str_id_;
  std::vector<std::uint32_t> str_member_;
  std::unordered_map<std::string, std::uint32_t> interned_;
  /// Tests member m must pass (kNever = contradictory, matches nothing;
  /// 0 = wildcard, matches everything).
  std::vector<std::uint16_t> required_;
  /// (member, filter) pairs evaluated through the interpreter.
  std::vector<std::pair<std::uint32_t, const Filter*>> fallbacks_;
};

}  // namespace bdps::matching::program
