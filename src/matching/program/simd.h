// Runtime-dispatched SIMD kernels for compiled predicate programs.
//
// PredicateProgram::evaluate runs three dense inner loops — interval
// compares over the iv_lo_/iv_hi_ SoA, interned-string-id compares, and
// the verdict reduction of uint16 pass counts against required_.  Each has
// a hand-written kernel per ISA (simd_avx2.cpp, simd_sse2.cpp,
// simd_neon.cpp) plus a portable unrolled-scalar reference
// (simd_portable.cpp); this header is the dispatcher that picks ONE kernel
// family per process.
//
// Dispatch is strictly a runtime decision: the per-ISA translation units
// are compiled with their own flags (never a global -mavx2), each exposes
// a getter that returns nullptr when compiled out, and active_kernel()
// resolves the best *runtime-supported* kernel once at first use via CPU
// feature detection.  The `BDPS_SIMD_KERNEL` environment variable pins the
// choice for a whole process ("portable", "sse2", "avx2", "neon");
// force_kernel() does the same programmatically for tests and benches.
//
// Exactness: every kernel produces byte-identical count/verdict buffers
// for every input — NaN and ±inf message values, denormals, ±0.0, and
// partial final vector lanes included.  The differential suite in
// tests/matching/program_test.cpp forces each dispatchable kernel in turn
// and compares buffers bitwise.
#pragma once

#include <vector>

#include "matching/program/simd_kernels.h"

namespace bdps::matching::program::simd {

/// The kernel evaluate() dispatches through.  Resolved once (env override,
/// then best runtime-supported ISA) and cached; an atomic load per call.
const Kernel& active_kernel();

/// Name of the kernel active_kernel() returns ("avx2", "sse2", "neon",
/// "portable") — recorded by benches and tools so results name their ISA.
const char* active_kernel_name();

/// Every kernel this binary can dispatch on this machine (compiled in AND
/// supported by the running CPU).  Portable is always present and last.
std::vector<const Kernel*> available_kernels();

/// Pins the active kernel by name; false (and no change) when the name is
/// unknown, compiled out, or unsupported by the running CPU.  Passing
/// nullptr re-resolves from scratch (environment, then CPU detection).
/// Thread-safe; concurrent evaluations see either kernel — both exact.
bool force_kernel(const char* name);

}  // namespace bdps::matching::program::simd
