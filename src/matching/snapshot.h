// Epoch-based snapshot publication (the matching fabric's RCU).
//
// The sharded matching fabric wants a read path with *zero* shared writes:
// a million-subscription broker matches on every processed message, and a
// reader-side lock — or even a contended shared_ptr refcount — serialises
// all reactor workers on one cache line.  Instead, writers publish
// immutable snapshots through a raw atomic pointer and readers pin an
// *epoch* before dereferencing it:
//
//   reader                               writer
//   ------                               ------
//   do {                                 build new snapshot off-path
//     e = epoch.load();                  published.store(new)      (A)
//     slot.store(e);                     stamp = epoch.fetch_add(1) (B)
//   } while (epoch.load() != e);         retire(old, stamp)
//   snap = published.load();             ... later ...
//   ... match against *snap ...          free old when every pinned
//   slot.store(kNotPinned);                slot's epoch is > stamp
//
// Correctness hinges on one ordering fact (all the loads/stores above are
// seq_cst): a reader whose *validated* pin epoch is > stamp performed its
// validating load after (B) in the single total order, hence after (A),
// hence its subsequent published.load() cannot return the retired
// snapshot.  Conversely a reader that might still hold the old pointer
// necessarily pinned an epoch <= stamp, and reclamation waits for it.  The
// validation loop closes the classic hazard: between loading the epoch and
// advertising it, a writer may have advanced past us — re-check and retry
// (writers are rare; the loop almost never iterates).
//
// Readers therefore perform two uncontended stores to their *own* slot and
// three shared loads per pin — no RMW, no lock, no writer wait.  Writers
// pay one fetch_add plus a mutex-protected retire-list append; memory is
// reclaimed opportunistically on later retires (amortised scan of the
// registered slots).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace bdps::matching {

class EpochDomain {
 public:
  /// One reader's pin advertisement.  Cache-line sized so concurrent
  /// readers never false-share; acquire via acquire_slot() (cheap, but
  /// mutex-protected — keep one slot per long-lived reader, e.g. per match
  /// scratch, not per operation).
  struct alignas(64) Slot {
    static constexpr std::uint64_t kNotPinned = ~std::uint64_t{0};
    std::atomic<std::uint64_t> epoch{kNotPinned};
    std::atomic<bool> in_use{false};
  };

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Registers (or recycles) a reader slot.  Slots live as long as the
  /// domain; release_slot returns one to the free pool.
  Slot* acquire_slot() {
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
      if (!slot.in_use.load(std::memory_order_relaxed)) {
        slot.in_use.store(true, std::memory_order_relaxed);
        assert(slot.epoch.load(std::memory_order_relaxed) == Slot::kNotPinned);
        return &slot;
      }
    }
    slots_.emplace_back();
    slots_.back().in_use.store(true, std::memory_order_relaxed);
    return &slots_.back();
  }

  void release_slot(Slot* slot) {
    if (slot == nullptr) return;
    assert(slot->epoch.load(std::memory_order_relaxed) == Slot::kNotPinned);
    std::lock_guard<std::mutex> lock(mu_);
    slot->in_use.store(false, std::memory_order_relaxed);
  }

  /// RAII validated pin; non-reentrant per slot.
  class Pin {
   public:
    Pin(const EpochDomain& domain, Slot& slot) : slot_(slot) {
      assert(slot.epoch.load(std::memory_order_relaxed) == Slot::kNotPinned &&
             "EpochDomain pins do not nest on one slot");
      std::uint64_t e;
      do {
        e = domain.epoch_.load(std::memory_order_seq_cst);
        slot_.epoch.store(e, std::memory_order_seq_cst);
      } while (domain.epoch_.load(std::memory_order_seq_cst) != e);
    }
    ~Pin() { slot_.epoch.store(Slot::kNotPinned, std::memory_order_seq_cst); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    Slot& slot_;
  };

  /// Hands `object` to the domain for deferred destruction: it is stamped
  /// with the epoch current *after* the bump, and destroyed once every
  /// pinned slot has moved past that stamp.  The caller must already have
  /// unpublished it (no new reader can reach it).  Reclamation of earlier
  /// garbage piggybacks on this call once enough has accumulated.
  void retire(std::shared_ptr<const void> object) {
    if (object == nullptr) return;
    const std::uint64_t stamp =
        epoch_.fetch_add(1, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(Retired{std::move(object), stamp});
    // Amortise the slot scan: with R retired objects and S slots, scanning
    // every max(64, S) retires keeps reclaim cost O(1) per retire.
    if (retired_.size() >= reclaim_threshold()) reclaim_locked();
  }

  /// Destroys every retired object no pinned reader can still see.
  /// Returns how many were reclaimed.
  std::size_t try_reclaim() {
    std::lock_guard<std::mutex> lock(mu_);
    return reclaim_locked();
  }

  std::size_t retired_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return retired_.size();
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    std::shared_ptr<const void> object;
    std::uint64_t stamp;
  };

  std::size_t reclaim_threshold() const {
    return slots_.size() < 64 ? 64 : slots_.size();
  }

  std::size_t reclaim_locked() {
    std::uint64_t min_pinned = Slot::kNotPinned;
    for (const Slot& slot : slots_) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      min_pinned = e < min_pinned ? e : min_pinned;
    }
    std::size_t freed = 0;
    // A reader pinned at epoch e can hold anything retired at stamp >= e
    // (the retire bump happened at-or-after its pin); stamps strictly below
    // every pin are invisible.
    std::size_t w = 0;
    for (std::size_t r = 0; r < retired_.size(); ++r) {
      if (retired_[r].stamp < min_pinned) {
        ++freed;
      } else {
        retired_[w++] = std::move(retired_[r]);
      }
    }
    retired_.resize(w);
    return freed;
  }

  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex mu_;
  std::deque<Slot> slots_;         // Stable addresses; grows on demand.
  std::vector<Retired> retired_;
};

}  // namespace bdps::matching
