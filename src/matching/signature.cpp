#include "matching/signature.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace bdps::matching {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact, deterministic rendering for the structural-equality fallback.
/// Predicate::to_string goes through default iostream precision, which can
/// render *different* operands identically — a false merge.  Hexfloat (and
/// a type tag) is collision-free.
std::string canonical_value_key(const Value& v) {
  if (v.is_string()) return "s:" + v.as_string();
  char buf[40];
  if (v.is_int()) {
    std::snprintf(buf, sizeof buf, "i:%lld",
                  static_cast<long long>(v.as_int()));
  } else {
    std::snprintf(buf, sizeof buf, "d:%a", v.as_double());
  }
  return buf;
}

std::string canonical_predicate_key(const Predicate& p) {
  std::string key = p.attribute;
  key += '\x1f';
  key += static_cast<char>('0' + static_cast<int>(p.op));
  key += '\x1f';
  key += canonical_value_key(p.operand);
  if (p.op == Op::kInRange) {
    key += '\x1f';
    key += canonical_value_key(p.operand2);
  }
  return key;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  h = fnv1a(h, s.data(), s.size());
  return fnv1a(h, "\x1f", 1);
}

std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
  return fnv1a(h, &bits, sizeof bits);
}

/// Selectivity rank for selective_attribute(): lower is more selective.
int constraint_rank(double lo, double hi) {
  if (std::nextafter(lo, kInf) >= hi) return 0;  // Point (equality).
  if (std::isfinite(lo) && std::isfinite(hi)) return 1;
  return 2;  // Half-bounded.
}

}  // namespace

FilterSignature FilterSignature::of(const Filter& filter) {
  FilterSignature sig;

  for (const Predicate& p : filter.predicates()) {
    const bool indexable_operand =
        p.operand.is_number() && std::isfinite(p.operand.as_double());
    double lo = -kInf;
    double hi = kInf;
    bool canonical = false;
    switch (p.op) {
      case Op::kLt:
      case Op::kLe:
        if (indexable_operand) {
          const double c = p.operand.as_double();
          hi = p.op == Op::kLe ? std::nextafter(c, kInf) : c;
          canonical = true;
        }
        break;
      case Op::kGt:
      case Op::kGe:
        if (indexable_operand) {
          const double c = p.operand.as_double();
          lo = p.op == Op::kGe ? c : std::nextafter(c, kInf);
          canonical = true;
        }
        break;
      case Op::kEq:
        if (indexable_operand) {
          lo = p.operand.as_double();
          hi = std::nextafter(lo, kInf);
          canonical = true;
        } else if (p.operand.is_string()) {
          // Merge into the string constraints below.
          bool merged = false;
          for (StringConstraint& sc : sig.strs_) {
            if (sc.name != p.attribute) continue;
            merged = true;
            if (sc.value != p.operand.as_string()) sig.never_ = true;
          }
          if (!merged) {
            sig.strs_.push_back(
                StringConstraint{p.attribute, p.operand.as_string()});
          }
          continue;
        }
        break;
      case Op::kNe:
      case Op::kInRange:
        break;
    }
    if (!canonical) {
      sig.exact_ = false;
      sig.opaque_.push_back(canonical_predicate_key(p));
      continue;
    }
    bool merged = false;
    for (NumericConstraint& nc : sig.nums_) {
      if (nc.name != p.attribute) continue;
      merged = true;
      nc.lo = std::max(nc.lo, lo);
      nc.hi = std::min(nc.hi, hi);
    }
    if (!merged) sig.nums_.push_back(NumericConstraint{p.attribute, lo, hi});
  }

  // A value is a number or a string, never both: an attribute carrying
  // constraints of both kinds is contradictory, as is an empty interval.
  for (const NumericConstraint& nc : sig.nums_) {
    if (!(nc.lo < nc.hi)) sig.never_ = true;
    for (const StringConstraint& sc : sig.strs_) {
      if (sc.name == nc.name) sig.never_ = true;
    }
  }

  std::sort(sig.nums_.begin(), sig.nums_.end(),
            [](const NumericConstraint& a, const NumericConstraint& b) {
              return a.name < b.name;
            });
  std::sort(sig.strs_.begin(), sig.strs_.end(),
            [](const StringConstraint& a, const StringConstraint& b) {
              return a.name < b.name;
            });
  std::sort(sig.opaque_.begin(), sig.opaque_.end());

  if (!sig.nums_.empty()) sig.anchor_ = sig.nums_.front().name;
  if (!sig.strs_.empty() &&
      (sig.anchor_.empty() || sig.strs_.front().name < sig.anchor_)) {
    sig.anchor_ = sig.strs_.front().name;
  }

  // Most selective canonical constraint: string/point equality beats
  // bounded intervals beats half-bounded; width then name break ties.
  int best_rank = 3;
  double best_width = kInf;
  for (const NumericConstraint& nc : sig.nums_) {
    const int rank = constraint_rank(nc.lo, nc.hi);
    const double width = nc.hi - nc.lo;
    if (rank < best_rank || (rank == best_rank && width < best_width) ||
        (rank == best_rank && width == best_width &&
         nc.name < sig.selective_)) {
      best_rank = rank;
      best_width = width;
      sig.selective_ = nc.name;
    }
  }
  for (const StringConstraint& sc : sig.strs_) {
    if (0 < best_rank || (0 == best_rank && sc.name < sig.selective_)) {
      best_rank = 0;
      best_width = 0.0;
      sig.selective_ = sc.name;
    }
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const NumericConstraint& nc : sig.nums_) {
    h = fnv1a_str(h, nc.name);
    h = fnv1a_double(h, nc.lo);
    h = fnv1a_double(h, nc.hi);
  }
  for (const StringConstraint& sc : sig.strs_) {
    h = fnv1a_str(h, sc.name);
    h = fnv1a_str(h, sc.value);
  }
  for (const std::string& op : sig.opaque_) h = fnv1a_str(h, op);
  const unsigned char flags =
      static_cast<unsigned char>((sig.exact_ ? 1 : 0) | (sig.never_ ? 2 : 0));
  h = fnv1a(h, &flags, 1);
  sig.hash_ = h;
  return sig;
}

bool FilterSignature::covers(const FilterSignature& other) const {
  // A provably empty filter is covered by anything.
  if (other.never_) return true;
  // An inexact coverer cannot reason about its opaque part; only full
  // structural equality is safe.  A provably-empty coverer covers nothing
  // non-empty.
  if (!exact_ || never_) return equivalent(other);

  // Every canonical constraint of the coverer must be implied by `other`'s
  // canonical part (which over-approximates other's true match set, so
  // containment of the relaxation implies containment of the truth).
  for (const NumericConstraint& need : nums_) {
    const auto it = std::lower_bound(
        other.nums_.begin(), other.nums_.end(), need.name,
        [](const NumericConstraint& nc, const std::string& name) {
          return nc.name < name;
        });
    if (it == other.nums_.end() || it->name != need.name) return false;
    if (!(it->lo >= need.lo && it->hi <= need.hi)) return false;
  }
  for (const StringConstraint& need : strs_) {
    const auto it = std::lower_bound(
        other.strs_.begin(), other.strs_.end(), need.name,
        [](const StringConstraint& sc, const std::string& name) {
          return sc.name < name;
        });
    if (it == other.strs_.end() || it->name != need.name) return false;
    if (it->value != need.value) return false;
  }
  return true;
}

bool FilterSignature::equivalent(const FilterSignature& other) const {
  if (hash_ != other.hash_ || exact_ != other.exact_ ||
      never_ != other.never_ || nums_.size() != other.nums_.size() ||
      strs_.size() != other.strs_.size() ||
      opaque_.size() != other.opaque_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < nums_.size(); ++i) {
    if (nums_[i].name != other.nums_[i].name ||
        std::bit_cast<std::uint64_t>(nums_[i].lo) !=
            std::bit_cast<std::uint64_t>(other.nums_[i].lo) ||
        std::bit_cast<std::uint64_t>(nums_[i].hi) !=
            std::bit_cast<std::uint64_t>(other.nums_[i].hi)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < strs_.size(); ++i) {
    if (strs_[i].name != other.strs_[i].name ||
        strs_[i].value != other.strs_[i].value) {
      return false;
    }
  }
  return std::equal(opaque_.begin(), opaque_.end(), other.opaque_.begin());
}

}  // namespace bdps::matching
