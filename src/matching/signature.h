// Canonical filter signatures: the covering/merging algebra.
//
// Content-based pub/sub tables are dominated by near-duplicate filters —
// popular attributes draw popular thresholds — and a broker that stores
// every duplicate re-propagates, re-indexes and re-scores the same
// predicate thousands of times.  Covering is the classic fix: when a new
// subscription's filter is *implied* by an existing one toward the same
// next hop, the table keeps one covering row with a refcount instead of a
// new row.
//
// The implication check works on a canonical interval form of the index's
// conjunct language (message/index.h): every finite numeric comparison or
// equality folds into one half-open interval [lo, hi) per attribute (the
// same nextafter folding the counting index uses for inclusive bounds),
// string equalities become exact (attribute, value) constraints, and
// everything else — kNe, kInRange, string orderings, non-finite operands —
// stays an *opaque* predicate.  Over the interval+string part the check is
// exact; opaque predicates make a signature conservative:
//
//   * an inexact filter can still BE covered (dropping its opaque
//     predicates only enlarges its match set, so containment of the
//     relaxed form implies containment of the true form), but
//   * an inexact filter never covers anything except a structurally
//     identical filter (we cannot reason about its opaque part).
//
// Missing-attribute semantics (a predicate on an absent attribute fails)
// are what make attrs(coverer) ⊆ attrs(covered) necessary: a message
// matching the covered filter must carry — and satisfy — every attribute
// the coverer constrains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "message/filter.h"

namespace bdps::matching {

/// One canonical numeric constraint: attribute value in [lo, hi).
struct NumericConstraint {
  std::string name;
  double lo = 0.0;  // -inf encodes "unbounded below".
  double hi = 0.0;  // +inf encodes "unbounded above".
};

/// One canonical string-equality constraint.
struct StringConstraint {
  std::string name;
  std::string value;
};

class FilterSignature {
 public:
  FilterSignature() = default;

  /// Canonicalizes `filter`: intersects per-attribute intervals, sorts
  /// constraints by name, detects contradictions, and collects the opaque
  /// remainder.
  static FilterSignature of(const Filter& filter);

  /// No predicates at all: matches every message (wildcard).
  bool wildcard() const {
    return nums_.empty() && strs_.empty() && opaque_.empty();
  }
  /// Canonical form proves the filter matches nothing (contradictory
  /// constraints on one attribute).  Opaque predicates never set this.
  bool never_matches() const { return never_; }
  /// True when the canonical form captures the filter exactly (no opaque
  /// predicates) — the precondition for this signature to cover others.
  bool exact() const { return exact_; }

  /// match(other) ⊆ match(this), decided conservatively: false only means
  /// "not provably covered".  Requires exact() on this side (or full
  /// structural equality); other may be inexact — see the header comment.
  bool covers(const FilterSignature& other) const;

  /// Same canonical form *and* same opaque remainder: the two filters are
  /// interchangeable for matching (an exact-equality merge needs no
  /// re-evaluation of the merged filter, ever).
  bool equivalent(const FilterSignature& other) const;

  /// Hash of the full canonical form; equivalent() signatures hash alike,
  /// so it keys the exact-duplicate merge map.
  std::uint64_t hash() const { return hash_; }

  /// Lexicographically smallest constrained attribute name — the shard /
  /// cover-candidate key.  Empty for wildcards and for signatures whose
  /// only predicates are opaque.
  const std::string& anchor_attribute() const { return anchor_; }

  /// The attribute of the *most selective* canonical constraint: string
  /// and point equalities beat bounded intervals beat half-bounded ones;
  /// interval width breaks ties, name order makes it deterministic.  Empty
  /// when nothing is canonical — such filters go to the fallback shard.
  const std::string& selective_attribute() const { return selective_; }

  const std::vector<NumericConstraint>& numeric_constraints() const {
    return nums_;
  }
  const std::vector<StringConstraint>& string_constraints() const {
    return strs_;
  }
  /// Canonical renderings of the opaque predicates (sorted), used for the
  /// structural-equality fallback.
  const std::vector<std::string>& opaque_predicates() const { return opaque_; }

 private:
  std::vector<NumericConstraint> nums_;  // Sorted by name, one per name.
  std::vector<StringConstraint> strs_;   // Sorted by name, one per name.
  std::vector<std::string> opaque_;      // Sorted canonical renderings.
  std::string anchor_;
  std::string selective_;
  bool exact_ = true;
  bool never_ = false;
  std::uint64_t hash_ = 0;
};

}  // namespace bdps::matching
