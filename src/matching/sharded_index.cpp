#include "matching/sharded_index.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <unordered_set>

namespace bdps::matching {

MatchFabric::ShardSnapshot::~ShardSnapshot() {
  // Long overlay lists must not unwind recursively (the shared_ptr chain
  // nests one destructor frame per node): unlink iteratively for every
  // node this snapshot holds the last reference to.
  std::shared_ptr<const OverlayNode> node = std::move(overlay);
  while (node != nullptr && node.use_count() == 1) {
    std::shared_ptr<const OverlayNode> next =
        std::move(const_cast<OverlayNode&>(*node).next);
    node = std::move(next);
  }
}

MatchScratch::~MatchScratch() {
  if (slot_ != nullptr) domain_->release_slot(slot_);
}

void MatchScratch::bind(EpochDomain& domain) {
  if (slot_ != nullptr) {
    assert(domain_ == &domain &&
           "a MatchScratch binds to a single EpochDomain for its lifetime");
    return;
  }
  domain_ = &domain;
  slot_ = domain.acquire_slot();
}

MatchFabric::MatchFabric(MatchFabricOptions options, EpochDomain* domain)
    : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.rebuild_divisor == 0) options_.rebuild_divisor = 1;
  if (options_.rebuild_min == 0) options_.rebuild_min = 1;
  if (options_.rebuild_cap < options_.rebuild_min) {
    options_.rebuild_cap = options_.rebuild_min;
  }
  if (options_.compile_min_members == 0) options_.compile_min_members = 1;
  active_hash_shards_ = options_.promote_rows == 0 ? options_.shards : 1;
  if (domain == nullptr) {
    owned_domain_ = std::make_unique<EpochDomain>();
    domain = owned_domain_.get();
  }
  domain_ = domain;
  shards_.reserve(options_.shards + 1);
  for (std::size_t i = 0; i < options_.shards + 1; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MatchFabric::~MatchFabric() = default;

std::size_t MatchFabric::shard_of(const FilterSignature& sig) const {
  // Callers hold rows_mu_ (active_hash_shards_ is promoted under it).
  const std::string& attr = sig.selective_attribute();
  if (attr.empty()) return 0;  // Fallback shard.
  return 1 + std::hash<std::string>{}(attr) % active_hash_shards_;
}

std::size_t MatchFabric::overlay_threshold(std::size_t core_size) const {
  std::size_t t = core_size / options_.rebuild_divisor;
  if (t < options_.rebuild_min) t = options_.rebuild_min;
  if (t > options_.rebuild_cap) t = options_.rebuild_cap;
  return t;
}

RowId MatchFabric::add(const Filter& filter) { return add(filter, {}); }

RowId MatchFabric::add(const Filter& filter,
                       const std::vector<Filter>& or_filters) {
  std::lock_guard<std::mutex> lock(rows_mu_);
  const RowId row = rows_.size();
  rows_.emplace_back();
  ++live_rows_;
  // Published (release) before any shard publishes a snapshot that can
  // emit this row, so readers always see a bound covering what they match.
  row_bound_.store(rows_.size(), std::memory_order_release);

  // Row-count shard promotion: the row that crosses promote_rows (and all
  // later ones) already fans across the full shard count.  Existing units
  // stay where they were installed — match order is row-ascending
  // regardless of placement, so the flip never changes a match set.
  if (active_hash_shards_ < options_.shards &&
      rows_.size() > options_.promote_rows) {
    active_hash_shards_ = options_.shards;
  }

  // shard_of must be sequenced before the std::move below — as call
  // arguments the two are indeterminately sequenced, and a moved-from
  // signature has an empty selective attribute, which routes every unit
  // to the fallback shard.
  FilterSignature sig = FilterSignature::of(filter);
  const std::size_t target = shard_of(sig);
  install_unit(target, filter, std::move(sig), row, rows_[row]);
  for (const Filter& f : or_filters) {
    FilterSignature s = FilterSignature::of(f);
    const std::size_t or_target = shard_of(s);
    install_unit(or_target, f, std::move(s), row, rows_[row]);
  }
  return row;
}

void MatchFabric::remove(RowId row) {
  std::lock_guard<std::mutex> lock(rows_mu_);
  if (row >= rows_.size()) return;
  bool removed_any = false;
  for (auto& [shard_index, unit] : rows_[row]) {
    Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    if (!unit->alive.load(std::memory_order_relaxed)) continue;
    removed_any = true;
    // Tombstone: matches stop emitting the unit immediately; its index
    // footprint is folded away by the next rebuild.
    unit->alive.store(false, std::memory_order_relaxed);
    --shard.live_units;
    ++shard.dead_since_rebuild;
    const ShardSnapshot* cur = shard.owner.get();
    const std::size_t core_size =
        cur != nullptr && cur->core != nullptr ? cur->core->roots.size() : 0;
    if (shard.dead_since_rebuild > overlay_threshold(core_size)) {
      rebuild_locked(shard);
    } else if (shard.compile_wanted.load(std::memory_order_acquire)) {
      compile_hot_locked(shard);  // Reader-requested; we hold the lock.
    }
  }
  if (removed_any) --live_rows_;
}

std::int32_t MatchFabric::find_root(const Shard& shard,
                                    const std::vector<CoreRoot>& roots,
                                    const FilterSignature& sig,
                                    std::size_t max_probe, bool* equal) {
  *equal = false;
  const auto eq = shard.roots_by_hash.find(sig.hash());
  if (eq != shard.roots_by_hash.end()) {
    for (const std::uint32_t k : eq->second) {
      if (roots[k].unit->sig.equivalent(sig)) {
        *equal = true;
        return static_cast<std::int32_t>(k);
      }
    }
  }
  std::size_t probes = 0;
  std::int32_t found = -1;
  auto probe_anchor = [&](const std::string& anchor) {
    const auto it = shard.roots_by_anchor.find(anchor);
    if (it == shard.roots_by_anchor.end()) return false;
    for (const std::uint32_t k : it->second) {
      if (probes++ >= max_probe) return true;  // Give up, stay a root.
      if (roots[k].unit->sig.covers(sig)) {
        found = static_cast<std::int32_t>(k);
        return true;
      }
    }
    return false;
  };
  // A coverer constrains a subset of sig's attributes, so its anchor (its
  // smallest constrained name) is one of sig's names — or "" (wildcards).
  static const std::string kNoAnchor;
  if (probe_anchor(kNoAnchor)) return found;
  for (const NumericConstraint& nc : sig.numeric_constraints()) {
    if (probe_anchor(nc.name)) return found;
  }
  for (const StringConstraint& sc : sig.string_constraints()) {
    if (probe_anchor(sc.name)) return found;
  }
  return found;
}

void MatchFabric::install_unit(
    std::size_t shard_index, const Filter& filter, FilterSignature sig,
    RowId row, std::vector<std::pair<std::uint32_t, Unit*>>& placed) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.units.emplace_back(filter, std::move(sig), row);
  Unit* unit = &shard.units.back();
  ++shard.live_units;
  placed.emplace_back(static_cast<std::uint32_t>(shard_index), unit);

  const ShardSnapshot* cur = shard.owner.get();
  const std::size_t core_size =
      cur != nullptr && cur->core != nullptr ? cur->core->roots.size() : 0;
  const std::size_t overlay_len = (cur != nullptr ? cur->overlay_len : 0) + 1;
  if (overlay_len > overlay_threshold(core_size)) {
    rebuild_locked(shard);  // Folds the new unit in with everything else.
    return;
  }

  std::int32_t core_root = -1;
  bool equal = false;
  if (options_.covering && cur != nullptr && cur->core != nullptr) {
    core_root = find_root(shard, cur->core->roots, unit->sig,
                          options_.max_cover_probe, &equal);
  }
  auto node = std::make_shared<OverlayNode>();
  node->next = cur != nullptr ? cur->overlay : nullptr;
  node->unit = unit;
  node->core_root = core_root;
  node->equal = equal;
  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->core = cur != nullptr ? cur->core : nullptr;
  snapshot->overlay = std::move(node);
  snapshot->overlay_len = overlay_len;
  snapshot->programs = cur != nullptr ? cur->programs : nullptr;
  publish_locked(shard, std::move(snapshot));
  if (shard.compile_wanted.load(std::memory_order_acquire)) {
    compile_hot_locked(shard);  // Reader-requested; we hold the lock.
  }
}

void MatchFabric::rebuild_locked(Shard& shard) {
  auto core = std::make_shared<CoreIndex>();
  shard.roots_by_hash.clear();
  shard.roots_by_anchor.clear();
  // Greedy, insertion-ordered root selection: a unit joins the first
  // existing root that equals or covers it, else becomes a root itself.
  for (Unit& unit : shard.units) {
    if (!unit.alive.load(std::memory_order_relaxed)) continue;
    std::int32_t root = -1;
    bool equal = false;
    if (options_.covering) {
      root = find_root(shard, core->roots, unit.sig, options_.max_cover_probe,
                       &equal);
    }
    if (root >= 0) {
      core->roots[static_cast<std::size_t>(root)].members.push_back(
          CoreMember{&unit, equal});
      continue;
    }
    const auto ordinal = static_cast<std::uint32_t>(core->roots.size());
    const SubscriptionIndex::EntryId id = core->index.add(unit.filter);
    assert(id == ordinal && "core index ids must mirror root ordinals");
    (void)id;
    core->roots.push_back(CoreRoot{&unit, {}});
    shard.roots_by_hash[unit.sig.hash()].push_back(ordinal);
    shard.roots_by_anchor[unit.sig.anchor_attribute()].push_back(ordinal);
  }
  core->index.finalize();
  for (CoreRoot& root : core->roots) {
    std::uint32_t eval_members = 0;
    for (const CoreMember& member : root.members) {
      eval_members += member.equal ? 0u : 1u;
    }
    root.eval_members = eval_members;
  }
  // The rebuild is the cheap compile point (immutable input, already off
  // the read path): roots that crossed the hot threshold — including ones
  // compiled for the previous core, whose heat lives on their units —
  // come out of the rebuild compiled.
  std::shared_ptr<ProgramSet> programs;
  if (options_.compile_hot_hits > 0) {
    for (std::size_t k = 0; k < core->roots.size(); ++k) {
      const CoreRoot& root = core->roots[k];
      if (!wants_program(root)) continue;
      if (programs == nullptr) {
        programs = std::make_shared<ProgramSet>();
        programs->programs.resize(core->roots.size());
      }
      programs->programs[k] = compile_root_locked(shard, root);
    }
  }
  shard.compile_wanted.store(false, std::memory_order_relaxed);
  shard.dead_since_rebuild = 0;
  ++shard.rebuilds;
  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->core = std::move(core);
  snapshot->programs = std::move(programs);
  publish_locked(shard, std::move(snapshot));
}

bool MatchFabric::wants_program(const CoreRoot& root) const {
  return options_.compile_hot_hits > 0 &&
         root.eval_members >= options_.compile_min_members &&
         root.unit->hits.load(std::memory_order_relaxed) >=
             options_.compile_hot_hits;
}

namespace {
/// Order-sensitive combined hash of the member signatures — the cache
/// bucket key (FilterSignature::hash already collides only for
/// near-equivalent filters).
template <typename Units>
std::uint64_t program_cache_key(const Units& members) {
  std::uint64_t key = 0xcbf29ce484222325ull ^ members.size();
  for (const auto* unit : members) {
    key = (key ^ unit->sig.hash()) * 0x100000001b3ull;
  }
  return key;
}
}  // namespace

std::shared_ptr<const program::PredicateProgram>
MatchFabric::compile_root_locked(Shard& shard, const CoreRoot& root) const {
  std::vector<const Unit*> members;
  members.reserve(root.eval_members);
  for (const CoreMember& member : root.members) {
    if (!member.equal) members.push_back(member.unit);
  }
  const std::uint64_t key = program_cache_key(members);
  const auto same_list = [&members](const ProgramCacheEntry& entry) {
    if (entry.members.size() != members.size()) return false;
    for (std::size_t i = 0; i < members.size(); ++i) {
      // Same unit (a root recompiled at a rebuild) or an interchangeable
      // filter (an equal root in another shard).
      if (entry.members[i] != members[i] &&
          !entry.members[i]->sig.equivalent(members[i]->sig)) {
        return false;
      }
    }
    return true;
  };
  {
    std::lock_guard<std::mutex> lock(program_cache_.mu);
    const auto it = program_cache_.entries.find(key);
    if (it != program_cache_.entries.end()) {
      for (const ProgramCacheEntry& entry : it->second) {
        if (same_list(entry)) {
          ++program_cache_.hits;
          return entry.program;
        }
      }
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<const Filter*> filters;
  filters.reserve(members.size());
  for (const Unit* unit : members) filters.push_back(&unit->filter);
  auto compiled = std::make_shared<const program::PredicateProgram>(
      program::PredicateProgram::compile(filters));
  shard.compile_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  ++shard.compiles;

  std::lock_guard<std::mutex> lock(program_cache_.mu);
  // Two shards can race past the lookup and compile the same list twice;
  // keep the first entry so the cache never holds duplicates.
  std::vector<ProgramCacheEntry>& bucket = program_cache_.entries[key];
  for (const ProgramCacheEntry& entry : bucket) {
    if (same_list(entry)) return entry.program;
  }
  bucket.push_back(ProgramCacheEntry{std::move(members), compiled});
  if (++program_cache_.size >= program_cache_.next_sweep) {
    // Drop entries no snapshot references any more (rebuilds retired the
    // cores that rode them); geometric cadence keeps the sweep amortised.
    for (auto it = program_cache_.entries.begin();
         it != program_cache_.entries.end();) {
      std::vector<ProgramCacheEntry>& b = it->second;
      for (std::size_t i = b.size(); i-- > 0;) {
        if (b[i].program.use_count() == 1) {
          b[i] = std::move(b.back());
          b.pop_back();
          --program_cache_.size;
        }
      }
      it = b.empty() ? program_cache_.entries.erase(it) : ++it;
    }
    program_cache_.next_sweep = std::max<std::size_t>(
        64, program_cache_.size * 2);
  }
  return compiled;
}

void MatchFabric::compile_hot_locked(Shard& shard) const {
  shard.compile_wanted.store(false, std::memory_order_relaxed);
  if (options_.compile_hot_hits == 0) return;
  const ShardSnapshot* cur = shard.owner.get();
  if (cur == nullptr || cur->core == nullptr) return;
  const std::vector<CoreRoot>& roots = cur->core->roots;
  const ProgramSet* old = cur->programs.get();
  std::shared_ptr<ProgramSet> next;
  for (std::size_t k = 0; k < roots.size(); ++k) {
    const bool compiled = old != nullptr && k < old->programs.size() &&
                          old->programs[k] != nullptr;
    if (compiled || !wants_program(roots[k])) continue;
    if (next == nullptr) {
      next = std::make_shared<ProgramSet>();
      if (old != nullptr) next->programs = old->programs;
      next->programs.resize(roots.size());
    }
    next->programs[k] = compile_root_locked(shard, roots[k]);
  }
  if (next == nullptr) return;  // Lost the race: already compiled.
  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->core = cur->core;
  snapshot->overlay = cur->overlay;
  snapshot->overlay_len = cur->overlay_len;
  snapshot->programs = std::move(next);
  publish_locked(shard, std::move(snapshot));
}

void MatchFabric::publish_locked(
    Shard& shard, std::shared_ptr<const ShardSnapshot> snapshot) const {
  // Order matters: swap the read pointer first, then epoch-retire the old
  // snapshot — EpochDomain's protocol requires the object be unreachable
  // to new pins before its retire stamp is taken.
  shard.published.store(snapshot.get(), std::memory_order_seq_cst);
  std::shared_ptr<const ShardSnapshot> old = std::move(shard.owner);
  shard.owner = std::move(snapshot);
  ++shard.publications;
  domain_->retire(std::move(old));
}

const std::vector<RowId>& MatchFabric::match(const Message& message,
                                             MatchScratch& scratch) const {
  scratch.bind(*domain_);
  ++scratch.row_generation_;
  if (scratch.row_generation_ == 0) {
    std::fill(scratch.row_gen_.begin(), scratch.row_gen_.end(), 0u);
    scratch.row_generation_ = 1;
  }
  const std::uint32_t row_generation = scratch.row_generation_;
  scratch.result_.clear();

  // Pinned for the whole fan-out: every shard snapshot loaded below stays
  // alive until the pin drops, however long the match takes.
  EpochDomain::Pin pin(*domain_, *scratch.slot_);

  const std::uint32_t hot_hits =
      static_cast<std::uint32_t>(options_.compile_hot_hits);
  std::uint64_t vm_evals = 0;
  std::uint64_t vm_fallbacks = 0;
  std::uint64_t interp_evals = 0;
  std::uint64_t batch_evals = 0;
  // The head is resolved into the hash-probed SlotValues view at the
  // first compiled-root hit and reused by every program in every shard —
  // one head walk per message instead of one Message::find per program
  // slot (the batch entry point of program.h).
  bool slots_resolved = false;

  auto emit = [&](const Unit* unit, bool needs_eval) {
    if (!unit->alive.load(std::memory_order_relaxed)) return;
    if (scratch.row_gen_.size() <= unit->row) {
      scratch.row_gen_.resize(unit->row + 1, 0u);
    }
    if (scratch.row_gen_[unit->row] == row_generation) return;
    if (needs_eval) {
      ++interp_evals;
      if (!unit->filter.matches(message)) return;
    }
    scratch.row_gen_[unit->row] = row_generation;
    scratch.result_.push_back(unit->row);
  };

  for (const auto& shard : shards_) {
    const ShardSnapshot* snap =
        shard->published.load(std::memory_order_seq_cst);
    if (snap == nullptr) continue;
    bool saw_hot_uncompiled = false;

    std::uint32_t root_generation = 0;
    if (snap->core != nullptr) {
      const std::vector<CoreRoot>& roots = snap->core->roots;
      const ProgramSet* programs = snap->programs.get();
      if (scratch.root_gen_.size() < roots.size()) {
        scratch.root_gen_.resize(roots.size(), 0u);
      }
      ++scratch.root_generation_;
      if (scratch.root_generation_ == 0) {
        std::fill(scratch.root_gen_.begin(), scratch.root_gen_.end(), 0u);
        scratch.root_generation_ = 1;
      }
      root_generation = scratch.root_generation_;

      // A core hit is exact: the root's own row needs no re-evaluation,
      // equal members ride along for free, covered members are checked —
      // but only ever on a root hit, and through the root's compiled
      // program (one batch pass over all of them) once it has one.
      for (const SubscriptionIndex::EntryId k :
           snap->core->index.match(message, scratch.index_scratch_)) {
        scratch.root_gen_[k] = root_generation;
        const CoreRoot& root = roots[k];
        emit(root.unit, /*needs_eval=*/false);
        const program::PredicateProgram* prog =
            programs != nullptr && k < programs->programs.size()
                ? programs->programs[k].get()
                : nullptr;
        if (prog != nullptr) {
          if (!slots_resolved) {
            scratch.slot_values_.reset(message);
            slots_resolved = true;
          }
          prog->evaluate(message, scratch.slot_values_,
                         scratch.program_eval_);
          ++batch_evals;
          vm_evals += prog->member_count() - prog->fallback_count();
          vm_fallbacks += prog->fallback_count();
          const std::uint8_t* matched = scratch.program_eval_.matched.data();
          std::size_t m = 0;
          for (const CoreMember& member : root.members) {
            if (member.equal) {
              emit(member.unit, /*needs_eval=*/false);
            } else if (matched[m++] != 0) {
              emit(member.unit, /*needs_eval=*/false);
            }
          }
          continue;
        }
        // Interpreted root: evaluate members the generic way and account
        // the hit toward the compile tier.  The counter is bumped racily
        // and only below the threshold — contention on a hot root's cache
        // line stops as soon as it saturates.
        if (hot_hits != 0 &&
            root.eval_members >= options_.compile_min_members) {
          std::uint32_t h = root.unit->hits.load(std::memory_order_relaxed);
          if (h < hot_hits) {
            root.unit->hits.store(h + 1, std::memory_order_relaxed);
            ++h;
          }
          if (h >= hot_hits) saw_hot_uncompiled = true;
        }
        for (const CoreMember& member : root.members) {
          emit(member.unit, /*needs_eval=*/!member.equal);
        }
      }
    }

    // One overlay walk per shard: members piggyback on the root marks set
    // above, standalone units are evaluated directly.
    for (const OverlayNode* node = snap->overlay.get(); node != nullptr;
         node = node->next.get()) {
      if (node->core_root >= 0) {
        if (root_generation != 0 &&
            scratch.root_gen_[static_cast<std::size_t>(node->core_root)] ==
                root_generation) {
          emit(node->unit, /*needs_eval=*/!node->equal);
        }
      } else {
        emit(node->unit, /*needs_eval=*/true);
      }
    }

    // Compile-tier handoff, after this shard's snapshot is consumed: flag
    // the shard so the next writer compiles, and volunteer ourselves when
    // the lock is free.  try_lock keeps readers wait-free with respect to
    // each other and to writers; the pinned epoch keeps `snap` (and every
    // snapshot retired by our own republish) alive meanwhile.
    if (saw_hot_uncompiled) {
      shard->compile_wanted.store(true, std::memory_order_release);
      if (shard->mu.try_lock()) {
        std::lock_guard<std::mutex> lock(shard->mu, std::adopt_lock);
        compile_hot_locked(*shard);
      }
    }
  }

  if (vm_evals != 0) {
    vm_member_evals_.fetch_add(vm_evals, std::memory_order_relaxed);
  }
  if (vm_fallbacks != 0) {
    vm_fallback_evals_.fetch_add(vm_fallbacks, std::memory_order_relaxed);
  }
  if (interp_evals != 0) {
    interp_member_evals_.fetch_add(interp_evals, std::memory_order_relaxed);
  }
  if (batch_evals != 0) {
    vm_batch_evals_.fetch_add(batch_evals, std::memory_order_relaxed);
  }

  // Canonical match order: ascending row id (shared with RoutingFabric's
  // reference engine so the two are byte-comparable downstream).
  std::sort(scratch.result_.begin(), scratch.result_.end());
  return scratch.result_;
}

MatchFabric::Stats MatchFabric::stats() const {
  Stats stats;
  std::lock_guard<std::mutex> lock(rows_mu_);
  stats.total_rows = rows_.size();
  stats.live_rows = live_rows_;
  stats.active_shards = active_hash_shards_;
  stats.vm_member_evals = vm_member_evals_.load(std::memory_order_relaxed);
  stats.vm_fallback_evals =
      vm_fallback_evals_.load(std::memory_order_relaxed);
  stats.interp_member_evals =
      interp_member_evals_.load(std::memory_order_relaxed);
  stats.vm_batch_evals = vm_batch_evals_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> cache_lock(program_cache_.mu);
    stats.shared_programs = program_cache_.hits;
  }
  std::uint64_t compile_ns = 0;
  // Shared programs ride several shards' snapshots: count each root once
  // in compiled_roots but each distinct program once in unique_programs.
  std::unordered_set<const program::PredicateProgram*> seen_programs;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    stats.live_units += shard.live_units;
    stats.rebuilds += shard.rebuilds;
    stats.publications += shard.publications;
    stats.compiles += shard.compiles;
    compile_ns += shard.compile_ns;
    const ShardSnapshot* snap = shard.owner.get();
    if (snap == nullptr) continue;
    if (snap->programs != nullptr) {
      for (const auto& prog : snap->programs->programs) {
        if (prog == nullptr) continue;
        ++stats.compiled_roots;
        if (seen_programs.insert(prog.get()).second) ++stats.unique_programs;
      }
    }
    if (snap->core != nullptr) {
      stats.index_roots += snap->core->roots.size();
      for (const CoreRoot& root : snap->core->roots) {
        for (const CoreMember& member : root.members) {
          if (!member.unit->alive.load(std::memory_order_relaxed)) continue;
          member.equal ? ++stats.equal_members : ++stats.covered_members;
        }
      }
    }
    for (const OverlayNode* node = snap->overlay.get(); node != nullptr;
         node = node->next.get()) {
      ++stats.overlay_units;
      if (node->core_root < 0) {
        ++stats.index_roots;
      } else if (node->unit->alive.load(std::memory_order_relaxed)) {
        node->equal ? ++stats.equal_members : ++stats.covered_members;
      }
    }
  }
  stats.compile_ms = static_cast<double>(compile_ns) / 1e6;
  return stats;
}

}  // namespace bdps::matching
