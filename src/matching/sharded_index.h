// Sharded, snapshot-published, covering-compressed matching fabric.
//
// A broker carrying ~10^6 subscriptions cannot serve them from one mutable
// counting index: every add re-sorts shared predicate runs, every match
// races every add, and near-duplicate filters (the common case — popular
// attributes draw popular thresholds) each pay full index freight.  The
// fabric splits the problem three ways:
//
//   * SHARDING — filters are partitioned by hash of their most selective
//     indexed attribute (FilterSignature::selective_attribute); filters
//     with no indexable constraint land in a dedicated fallback shard.
//     An add or remove touches exactly one shard; a match fans across all
//     shards reusing one caller-owned scratch.
//
//   * SNAPSHOT READS — each shard publishes an immutable ShardSnapshot
//     through an atomic pointer guarded by an EpochDomain (snapshot.h).
//     Readers pin an epoch once per match and never take a lock; writers
//     rebuild or extend off the read path and swap.  A snapshot is a
//     finalized core counting index over *covering roots* plus a small
//     persistent-list overlay of recent adds; when the overlay outgrows
//     max(rebuild_min, min(rebuild_cap, core/rebuild_divisor)) the writer
//     folds everything into a fresh core (amortised O(1) index work per
//     add).  Removals tombstone the unit's atomic alive flag — visible
//     immediately, reclaimed at the next rebuild.
//
//   * COVERING/MERGING — a new filter provably implied by an existing
//     root (FilterSignature::covers, exact over the interval+string
//     conjunct language, conservative otherwise) is stored as a *member*
//     of that root instead of a new index entry: the root row acts as the
//     covering row, its member list as the refcount.  Signature-equivalent
//     members are emitted on a root hit with no re-evaluation at all;
//     strictly-covered members are direct-evaluated only when their root
//     hits.  Because every member still emits its own RowId, merging is
//     loss-free for row-exact consumers (the kernel's per-row scoring, the
//     golden matrices) and therefore safe fabric-wide, not just per next
//     hop; the compression shows up as index entries per live row.
//
//   * TIERED COMPILATION — covered members are the read-side cost at
//     scale: every hit on a popular root re-evaluates its member list
//     through the generic Filter::matches tree.  Roots start on that
//     interpreter; once a root's hit counter passes compile_hot_hits its
//     evaluated members are lowered into one flat PredicateProgram
//     (program/program.h — per-attribute slots, SoA interval bounds,
//     interned string ids, counting batch evaluation), and subsequent
//     hits evaluate all members in a single pass.  Compilation happens
//     off the read path: at snapshot rebuilds, on the next writer to
//     touch the shard, or by a reader volunteering through a try_lock.
//     Programs ride the snapshots, so EpochDomain retire reclaims them
//     with the core they were compiled for, and add/remove stays cheap
//     under churn (cold filters never pay compile costs).
//
//     Programs are deduplicated fabric-wide through a signature-keyed
//     cache: a compile request whose evaluated member list is element-wise
//     FilterSignature::equivalent to an already-compiled one (the same
//     root recompiled at a rebuild, or an equal root in another shard —
//     promotion splits popular filters across shards) shares the existing
//     program instead of building a new one.  Shared programs are
//     refcounted by the snapshots that ride them and retired through the
//     same epoch domain; the cache's own reference is dropped by an
//     occasional sweep once no snapshot holds the program.
//
//     Evaluation is batched per message: match() resolves the head into a
//     hash-probed SlotValues view once and every compiled program in
//     every shard reads its slots from that view (program slots carry
//     precomputed name hashes), and the programs' inner loops run on the
//     runtime-dispatched SIMD kernels (program/simd.h).
//
// match() returns row ids in ascending order — the fabric's (and
// RoutingFabric's) canonical match order, so reference and sharded engines
// are byte-comparable.
//
// Thread-safety: match() is lock-free and safe from any number of threads,
// each with its own MatchScratch.  add()/remove() serialise on internal
// mutexes and may run concurrently with matches (a concurrent match sees
// the row either way — both linearisations are valid).  Unit storage is
// append-only for the fabric's lifetime: removed rows stop matching but
// their memory is reclaimed only by shard rebuilds' root lists, not
// returned to the allocator (bounded by total adds).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/program/program.h"
#include "matching/signature.h"
#include "matching/snapshot.h"
#include "message/index.h"

namespace bdps::matching {

using RowId = std::size_t;

struct MatchFabricOptions {
  /// Hash shards, plus one implicit fallback shard for non-indexable
  /// filters (shard index 0).
  std::size_t shards = 8;
  /// Enables covering/equivalence merging; off, every filter is its own
  /// index root (the differential-testing configuration).
  bool covering = true;
  /// Root candidates inspected per cover probe before conservatively
  /// giving up (a missed cover only costs compression, never correctness).
  std::size_t max_cover_probe = 32;
  /// Overlay length that triggers a core rebuild:
  /// max(rebuild_min, min(rebuild_cap, core_size / rebuild_divisor)).
  /// rebuild_min bounds rebuild churn for small shards, rebuild_divisor
  /// keeps total rebuild work O(divisor * adds), rebuild_cap bounds the
  /// per-match overlay walk for huge shards.  The cap is the scale knob
  /// that matters at 10^6 rows: once it clamps the geometric threshold
  /// (core > cap * divisor per shard), total rebuild work degrades from
  /// O(divisor * adds) to O(adds^2 / cap) — 16384 defers that onset to
  /// ~10M subscriptions at the default shard count, and the longer
  /// overlay it admits is cheap to walk (root-mark gated; see match()).
  std::size_t rebuild_min = 64;
  std::size_t rebuild_cap = 16384;
  std::size_t rebuild_divisor = 8;
  /// Compile tier: a core root whose hit counter reaches this many match
  /// hits gets its evaluated members lowered into a PredicateProgram
  /// (program/program.h) — at the next rebuild, at the next write to its
  /// shard, or by a reader volunteering through a try_lock (never blocking
  /// other readers).  0 disables compilation; members then always
  /// interpret through Filter::matches.
  std::size_t compile_hot_hits = 4;
  /// Roots with fewer evaluated (non-equal) members than this stay on the
  /// interpreter: below the crossover the per-hit program dispatch costs
  /// more than the member walk it replaces (bench/micro_filter_program).
  std::size_t compile_min_members = 4;
  /// Row-count shard promotion: with a value N > 0 the fabric routes every
  /// indexable filter to ONE hash shard until more than N rows have been
  /// issued, then fans new filters across all `shards` (existing units
  /// stay put — match results are shard-layout independent).  Per-broker
  /// tables hold tens to thousands of rows, where every extra shard is one
  /// more index walk per match; the full fan-out only pays once writers
  /// contend and rebuilds grow.  0 = fully sharded from the first row.
  std::size_t promote_rows = 0;
};

class MatchFabric;

/// Caller-owned (one per reader thread) match state: the per-shard index
/// scratch, row/root deduplication marks, the result buffer, and this
/// reader's epoch slot.  Binds to a fabric's EpochDomain on first use and
/// must not outlive that domain.
class MatchScratch {
 public:
  MatchScratch() = default;
  ~MatchScratch();
  MatchScratch(const MatchScratch&) = delete;
  MatchScratch& operator=(const MatchScratch&) = delete;

 private:
  friend class MatchFabric;

  void bind(EpochDomain& domain);

  SubscriptionIndex::Scratch index_scratch_;
  std::vector<std::uint32_t> row_gen_;   // Dedupe rows across shards/units.
  std::uint32_t row_generation_ = 0;
  std::vector<std::uint32_t> root_gen_;  // Hit roots, per shard visit.
  std::uint32_t root_generation_ = 0;
  std::vector<RowId> result_;
  program::ProgramEval program_eval_;  // Compiled-root batch evaluation.
  /// Message head resolved once per match() and shared by every compiled
  /// program across every shard (program.h: the batch entry point).
  program::SlotValues slot_values_;
  EpochDomain* domain_ = nullptr;
  EpochDomain::Slot* slot_ = nullptr;
};

class MatchFabric {
 public:
  struct Stats {
    std::size_t live_rows = 0;
    std::size_t total_rows = 0;       // Ids ever issued.
    std::size_t live_units = 0;       // Disjunct conjunctions alive.
    std::size_t index_roots = 0;      // Core roots + standalone overlay.
    std::size_t equal_members = 0;    // Merged with zero eval cost.
    std::size_t covered_members = 0;  // Evaluated only on root hits.
    std::size_t overlay_units = 0;
    std::size_t rebuilds = 0;
    std::size_t publications = 0;
    /// Hash shards new filters currently fan across (promote_rows).
    std::size_t active_shards = 0;
    // ---- Compile tier ----
    std::size_t compiled_roots = 0;  // Roots with a live program.
    /// Distinct live programs across all shards — counted once however
    /// many roots share them (compiled_roots counts per root).
    std::size_t unique_programs = 0;
    std::size_t compiles = 0;        // Programs actually built, cumulative.
    /// Compile requests served by the cross-shard program cache instead
    /// of a fresh compile (equal-signature member lists), cumulative.
    std::size_t shared_programs = 0;
    double compile_ms = 0.0;         // Wall time spent compiling.
    /// Member verdicts produced by compiled programs vs. by the
    /// Filter::matches interpreter (covered members + overlay + program
    /// fallbacks), cumulative over every match() call.
    std::uint64_t vm_member_evals = 0;
    std::uint64_t vm_fallback_evals = 0;
    std::uint64_t interp_member_evals = 0;
    /// Compiled-program batch evaluations (one per compiled root hit),
    /// cumulative — each resolves its slots from the shared SlotValues.
    std::uint64_t vm_batch_evals = 0;
    /// Live units per index entry — the covering compression ratio.
    double compression() const {
      return index_roots == 0
                 ? 1.0
                 : static_cast<double>(live_units) /
                       static_cast<double>(index_roots);
    }
  };

  /// `domain` may be shared across fabrics (e.g. one per-RoutingFabric
  /// domain so a multi-broker match pins once); the fabric owns a private
  /// domain when none is given.
  explicit MatchFabric(MatchFabricOptions options = {},
                       EpochDomain* domain = nullptr);
  ~MatchFabric();
  MatchFabric(const MatchFabric&) = delete;
  MatchFabric& operator=(const MatchFabric&) = delete;

  /// Registers a subscription (a conjunctive filter plus optional extra
  /// disjuncts); returns a dense RowId.  Ids are never reused.
  RowId add(const Filter& filter);
  RowId add(const Filter& filter, const std::vector<Filter>& or_filters);

  /// Tombstones a row: it stops matching immediately; its storage is
  /// folded away by the owning shards' next rebuilds.  Idempotent.
  void remove(RowId row);

  /// Ids issued so far (== the exclusive upper bound of returned RowIds).
  std::size_t row_bound() const {
    return row_bound_.load(std::memory_order_acquire);
  }

  /// Row ids matching `message`, ascending, each exactly once.  Lock-free;
  /// returns a reference into `scratch`.
  const std::vector<RowId>& match(const Message& message,
                                  MatchScratch& scratch) const;

  Stats stats() const;

  EpochDomain& domain() { return *domain_; }

 private:
  struct Unit {
    Unit(Filter f, FilterSignature s, RowId r)
        : filter(std::move(f)), sig(std::move(s)), row(r) {}
    Filter filter;
    FilterSignature sig;
    RowId row;
    std::atomic<bool> alive{true};
    /// Root-hit counter driving the compile tier.  Lives on the unit, not
    /// the root, so heat survives rebuilds (root ordinals reshuffle, the
    /// covering unit persists).  Bumped racily below compile_hot_hits and
    /// left alone after (lost updates only delay compilation).  Mutable:
    /// readers reach it through the snapshot's const Unit pointers.
    mutable std::atomic<std::uint32_t> hits{0};
  };

  struct CoreMember {
    const Unit* unit;
    bool equal;  // Signature-equivalent to the root: emit without eval.
  };
  /// One core index entry: the covering unit and the rows it subsumes.
  struct CoreRoot {
    const Unit* unit;
    std::vector<CoreMember> members;
    /// Members with equal == false — the compile unit's size (filled once
    /// after the rebuild's member assignment).
    std::uint32_t eval_members = 0;
  };
  struct CoreIndex {
    SubscriptionIndex index;  // Finalized; EntryId k <-> roots[k].
    std::vector<CoreRoot> roots;
  };
  /// Programs for a core's roots, by root ordinal (null = interpreted).
  /// Shared between successive snapshots of the same core: a hot-compile
  /// republish swaps in a new ProgramSet without touching core or overlay.
  struct ProgramSet {
    std::vector<std::shared_ptr<const program::PredicateProgram>> programs;
  };
  /// Persistent (newest-first) overlay list: sharing the tail lets a
  /// writer publish an extended overlay in O(1) without copying.
  struct OverlayNode {
    std::shared_ptr<const OverlayNode> next;
    const Unit* unit;
    std::int32_t core_root;  // >= 0: member of core root; -1: standalone.
    bool equal;
  };
  struct ShardSnapshot {
    ShardSnapshot() = default;
    ~ShardSnapshot();  // Unlinks the overlay iteratively (no deep recursion).
    std::shared_ptr<const CoreIndex> core;  // Null until the first rebuild.
    std::shared_ptr<const OverlayNode> overlay;
    std::size_t overlay_len = 0;
    std::shared_ptr<const ProgramSet> programs;  // Null = all interpreted.
  };
  struct Shard {
    std::mutex mu;  // Writers only; readers go through `published`.
    std::atomic<const ShardSnapshot*> published{nullptr};
    std::shared_ptr<const ShardSnapshot> owner;  // Keeps *published alive.
    std::deque<Unit> units;  // Append-only, address-stable.
    std::size_t live_units = 0;
    std::size_t dead_since_rebuild = 0;
    // Writer-side probe maps over the current core's roots.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        roots_by_hash;
    std::unordered_map<std::string, std::vector<std::uint32_t>>
        roots_by_anchor;
    std::size_t rebuilds = 0;
    std::size_t publications = 0;
    /// Raised by readers that saw a hot, uncompiled root; drained by the
    /// next writer to hold mu (or by a reader winning the try_lock).
    std::atomic<bool> compile_wanted{false};
    std::size_t compiles = 0;
    std::uint64_t compile_ns = 0;
  };

  /// Cross-shard program cache: one entry per distinct evaluated member
  /// list, keyed by the combined hash of the members' FilterSignatures
  /// (order-sensitive) and verified element-wise with
  /// FilterSignature::equivalent — the same interchangeability contract
  /// equal-member merging already trusts.  Member units are address-stable
  /// for the fabric's lifetime, so entries stay comparable after
  /// tombstones; entries whose program no snapshot references any more
  /// (use_count() == 1) are dropped by an occasional sweep.  Lock order:
  /// shard.mu -> mu (never the reverse).
  struct ProgramCacheEntry {
    std::vector<const Unit*> members;  // Evaluated members, program order.
    std::shared_ptr<const program::PredicateProgram> program;
  };
  struct ProgramCache {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<ProgramCacheEntry>> entries;
    std::size_t size = 0;
    std::size_t hits = 0;       // Stats::shared_programs.
    std::size_t next_sweep = 64;
  };

  std::size_t shard_of(const FilterSignature& sig) const;
  /// Root to merge `sig` under (shard.mu held): equivalence by hash first,
  /// then a bounded cover probe over roots anchored at each of sig's
  /// constrained attributes (plus "" for wildcard roots).  -1 when none.
  static std::int32_t find_root(const Shard& shard,
                                const std::vector<CoreRoot>& roots,
                                const FilterSignature& sig,
                                std::size_t max_probe, bool* equal);
  void install_unit(std::size_t shard_index, const Filter& filter,
                    FilterSignature sig, RowId row,
                    std::vector<std::pair<std::uint32_t, Unit*>>& placed);
  void rebuild_locked(Shard& shard);
  /// Root is hot enough and big enough to pay for a program.
  bool wants_program(const CoreRoot& root) const;
  /// Program for `root`'s evaluated members: served from the cross-shard
  /// cache when an equivalent member list was already compiled, freshly
  /// compiled (timing into the shard counters) and cached otherwise.
  /// Requires shard.mu.
  std::shared_ptr<const program::PredicateProgram> compile_root_locked(
      Shard& shard, const CoreRoot& root) const;
  /// Compile point off the rebuild path: builds programs for every hot,
  /// still-interpreted root of the current snapshot and republishes with
  /// the core and overlay shared.  Requires shard.mu; const because
  /// readers volunteer through it (the fabric's logical state — the row
  /// set — is untouched).
  void compile_hot_locked(Shard& shard) const;
  void publish_locked(Shard& shard,
                      std::shared_ptr<const ShardSnapshot> snapshot) const;
  std::size_t overlay_threshold(std::size_t core_size) const;

  MatchFabricOptions options_;
  std::unique_ptr<EpochDomain> owned_domain_;
  EpochDomain* domain_;
  std::vector<std::unique_ptr<Shard>> shards_;  // [0] is the fallback.

  mutable std::mutex rows_mu_;
  /// Row -> owning (shard, unit) pairs; one entry per disjunct.
  std::vector<std::vector<std::pair<std::uint32_t, Unit*>>> rows_;
  std::size_t live_rows_ = 0;
  std::atomic<std::size_t> row_bound_{0};
  /// Hash shards shard_of currently routes to (rows_mu_; see
  /// MatchFabricOptions::promote_rows).  All shards_ slots exist from
  /// construction, so promotion never reallocates under readers.
  std::size_t active_hash_shards_ = 1;
  /// Reader-side tier tallies (one relaxed add per counter per match).
  mutable std::atomic<std::uint64_t> vm_member_evals_{0};
  mutable std::atomic<std::uint64_t> vm_fallback_evals_{0};
  mutable std::atomic<std::uint64_t> interp_member_evals_{0};
  mutable std::atomic<std::uint64_t> vm_batch_evals_{0};
  /// Mutable: readers volunteer compiles through the const match() path.
  mutable ProgramCache program_cache_;
};

}  // namespace bdps::matching
