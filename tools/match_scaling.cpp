// Million-subscription matching probe — the numbers behind BENCH_pr8.json.
//
// Sweeps the sharded matching fabric (src/matching/) over subscription
// counts up to 1M+ on the Zipf churn workload, and for each row records:
// build rate, sustained churn throughput (remove+add pairs/s), match
// latency percentiles (p50/p99 over individually timed matches), sustained
// publish/match throughput, and the covering compression ratio.  Reference
// rows run the mutable counting index (message/index.h) on the identical
// corpus; a shard-count sweep and a covering on/off pair at the top scale
// feed the PERF.md sensitivity tables.  A row that blows the wall budget
// stops the escalation (larger rows are marked infeasible, not attempted).
//
//   ./match_scaling [budget_s=180] [max_subs=1000000] [probes=2000]
//                   [churn_ops=20000] [do_sweep=1] [do_ablation=1]
//                   [shard_list=1,2,4,16,32] [extras_subs=<max_subs>]
//
// The stage knobs exist so the expensive extras (covering ablation,
// shard-count sweep) can be re-run or re-scaled without repeating the
// population sweep: `do_sweep=0 extras_subs=100000` runs just the
// sensitivity rows at 100k.
//
// Output: one JSON object per line on stdout (errors JSON-escaped), plus a
// summary table on stderr.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config.h"
#include "matching/program/simd.h"
#include "matching/sharded_index.h"
#include "message/index.h"
#include "workload/generator.h"

using namespace bdps;
using matching::MatchFabric;
using matching::MatchFabricOptions;
using matching::MatchScratch;

namespace {

struct Probe {
  std::size_t subs = 0;
  std::string engine;  // "sharded" or "reference".
  std::size_t shards = 0;
  bool covering = false;
  bool completed = false;
  std::string error;
  double build_ms = 0.0;
  double adds_per_sec = 0.0;
  double churn_per_sec = 0.0;
  double match_p50_us = 0.0;
  double match_p99_us = 0.0;
  double match_per_sec = 0.0;
  double mean_matches = 0.0;  // Rows matched per probe message.
  double compression = 1.0;
  std::size_t index_roots = 0;
  std::size_t equal_members = 0;
  std::size_t covered_members = 0;
  std::size_t rebuilds = 0;
  std::size_t publications = 0;
  // Compile-tier state after the timed probes (sharded rows only).
  std::size_t compile_hits = 0;  // Threshold the row ran with (0 = off).
  std::size_t compiled_roots = 0;
  std::size_t compiles = 0;
  double compile_ms = 0.0;
  std::uint64_t vm_member_evals = 0;
  std::uint64_t interp_member_evals = 0;
  // SIMD batch tier (PR 10): the dispatched kernel name, program-cache
  // hits across shards, distinct live programs, and batch evaluate calls.
  std::string simd_kernel;
  std::size_t shared_programs = 0;
  std::size_t unique_programs = 0;
  std::uint64_t vm_batch_evals = 0;
};

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

ChurnWorkloadConfig corpus_config() {
  ChurnWorkloadConfig config;
  config.seed = 2026;
  return config;
}

/// Times `probes` individual matches through `match_one`, filling the
/// latency/throughput fields of `p`.
template <typename MatchFn>
void time_matches(Probe& p, ChurnWorkload& workload, std::size_t probes,
                  MatchFn&& match_one) {
  std::vector<Message> messages;
  messages.reserve(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    messages.push_back(workload.next_message());
  }
  std::vector<double> micros;
  micros.reserve(probes);
  double total_us = 0.0;
  std::size_t total_matches = 0;
  for (const Message& m : messages) {
    const auto start = Clock::now();
    total_matches += match_one(m);
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    micros.push_back(us);
    total_us += us;
  }
  std::sort(micros.begin(), micros.end());
  p.match_p50_us = micros[micros.size() / 2];
  p.match_p99_us = micros[micros.size() - 1 - micros.size() / 100];
  p.match_per_sec =
      total_us > 0.0 ? 1e6 * static_cast<double>(probes) / total_us : 0.0;
  p.mean_matches =
      static_cast<double>(total_matches) / static_cast<double>(probes);
}

Probe run_sharded(std::size_t subs, std::size_t shards, bool covering,
                  std::size_t probes, std::size_t churn_ops,
                  std::size_t compile_hits = MatchFabricOptions{}.compile_hot_hits) {
  Probe p;
  p.subs = subs;
  p.engine = "sharded";
  p.shards = shards;
  p.covering = covering;
  p.compile_hits = compile_hits;
  try {
    ChurnWorkload workload(corpus_config());
    MatchFabricOptions options;
    options.shards = shards;
    options.covering = covering;
    options.compile_hot_hits = compile_hits;
    MatchFabric fabric(options);

    const auto build_start = Clock::now();
    std::vector<matching::RowId> live;
    live.reserve(subs);
    for (std::size_t i = 0; i < subs; ++i) {
      live.push_back(fabric.add(workload.next_filter()));
    }
    p.build_ms = ms_since(build_start);
    p.adds_per_sec = p.build_ms > 0.0
                         ? 1000.0 * static_cast<double>(subs) / p.build_ms
                         : 0.0;

    // Steady-state churn at the held population.
    const auto churn_start = Clock::now();
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < churn_ops; ++i) {
      fabric.remove(live[cursor]);
      live[cursor] = fabric.add(workload.next_filter());
      cursor = (cursor + 1) % live.size();
    }
    const double churn_ms = ms_since(churn_start);
    p.churn_per_sec =
        churn_ms > 0.0 ? 1000.0 * static_cast<double>(churn_ops) / churn_ms
                       : 0.0;

    MatchScratch scratch;
    // Warm the compile tier: enough untimed matches for hot roots to cross
    // compile_hot_hits and the reader-volunteer path to build their
    // programs, so the timed probes measure the steady state of the row's
    // configured tier (with compile_hits=0 this is just cache warm-up).
    const std::size_t warmup =
        compile_hits > 0 ? std::max<std::size_t>(4 * compile_hits, 64) : 16;
    for (std::size_t i = 0; i < warmup; ++i) {
      const Message m = workload.next_message();
      (void)fabric.match(m, scratch);
    }

    time_matches(p, workload, probes,
                 [&](const Message& m) { return fabric.match(m, scratch).size(); });

    const MatchFabric::Stats stats = fabric.stats();
    p.compression = stats.compression();
    p.index_roots = stats.index_roots;
    p.equal_members = stats.equal_members;
    p.covered_members = stats.covered_members;
    p.rebuilds = stats.rebuilds;
    p.publications = stats.publications;
    p.compiled_roots = stats.compiled_roots;
    p.compiles = stats.compiles;
    p.compile_ms = stats.compile_ms;
    p.vm_member_evals = stats.vm_member_evals;
    p.interp_member_evals = stats.interp_member_evals;
    p.simd_kernel = matching::program::simd::active_kernel_name();
    p.shared_programs = stats.shared_programs;
    p.unique_programs = stats.unique_programs;
    p.vm_batch_evals = stats.vm_batch_evals;
    p.completed = true;
  } catch (const std::exception& e) {
    p.error = e.what();
  }
  return p;
}

Probe run_reference(std::size_t subs, std::size_t probes) {
  Probe p;
  p.subs = subs;
  p.engine = "reference";
  try {
    ChurnWorkload workload(corpus_config());
    SubscriptionIndex index;
    const auto build_start = Clock::now();
    for (std::size_t i = 0; i < subs; ++i) {
      index.add(workload.next_filter());
    }
    index.finalize();
    p.build_ms = ms_since(build_start);
    p.adds_per_sec = p.build_ms > 0.0
                         ? 1000.0 * static_cast<double>(subs) / p.build_ms
                         : 0.0;
    p.index_roots = subs;
    SubscriptionIndex::Scratch scratch;
    time_matches(p, workload, probes,
                 [&](const Message& m) { return index.match(m, scratch).size(); });
    p.completed = true;
  } catch (const std::exception& e) {
    p.error = e.what();
  }
  return p;
}

/// Backslash-escapes quotes/backslashes and strips control characters, so
/// an arbitrary exception message cannot break the JSON output line.
std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

void emit(const Probe& p) {
  const std::string error = escape(p.error);
  std::printf(
      "{\"subs\": %zu, \"engine\": \"%s\", \"shards\": %zu, "
      "\"covering\": %s, \"completed\": %s, \"build_ms\": %.1f, "
      "\"adds_per_sec\": %.0f, \"churn_per_sec\": %.0f, "
      "\"match_p50_us\": %.1f, \"match_p99_us\": %.1f, "
      "\"match_per_sec\": %.0f, \"mean_matches\": %.1f, "
      "\"compression\": %.3f, \"index_roots\": %zu, "
      "\"equal_members\": %zu, \"covered_members\": %zu, "
      "\"rebuilds\": %zu, \"publications\": %zu, "
      "\"compile_hits\": %zu, \"compiled_roots\": %zu, \"compiles\": %zu, "
      "\"compile_ms\": %.2f, \"vm_member_evals\": %llu, "
      "\"interp_member_evals\": %llu, \"simd_kernel\": \"%s\", "
      "\"shared_programs\": %zu, \"unique_programs\": %zu, "
      "\"vm_batch_evals\": %llu%s%s%s}\n",
      p.subs, p.engine.c_str(), p.shards, p.covering ? "true" : "false",
      p.completed ? "true" : "false", p.build_ms, p.adds_per_sec,
      p.churn_per_sec, p.match_p50_us, p.match_p99_us, p.match_per_sec,
      p.mean_matches, p.compression, p.index_roots, p.equal_members,
      p.covered_members, p.rebuilds, p.publications, p.compile_hits,
      p.compiled_roots, p.compiles, p.compile_ms,
      static_cast<unsigned long long>(p.vm_member_evals),
      static_cast<unsigned long long>(p.interp_member_evals),
      p.simd_kernel.c_str(), p.shared_programs, p.unique_programs,
      static_cast<unsigned long long>(p.vm_batch_evals),
      error.empty() ? "" : ", \"error\": \"", error.c_str(),
      error.empty() ? "" : "\"");
  std::fflush(stdout);
  std::fprintf(stderr,
               "%-9s %8zu subs  %2zu shards  cover=%d  hits=%zu  "
               "p50 %7.1f us  p99 %8.1f us  %8.0f match/s  x%.2f  "
               "%zu prog  %s\n",
               p.engine.c_str(), p.subs, p.shards, p.covering ? 1 : 0,
               p.compile_hits, p.match_p50_us, p.match_p99_us, p.match_per_sec,
               p.compression, p.compiled_roots,
               p.completed ? "ok" : p.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const double budget_ms = args.get_double("budget_s", 180.0) * 1000.0;
  const auto max_subs =
      static_cast<std::size_t>(args.get_int("max_subs", 1000000));
  const auto probes = static_cast<std::size_t>(args.get_int("probes", 2000));
  const auto churn_ops =
      static_cast<std::size_t>(args.get_int("churn_ops", 20000));
  const bool do_sweep = args.get_int("do_sweep", 1) != 0;
  const bool do_ablation = args.get_int("do_ablation", 1) != 0;
  const auto extras_subs = static_cast<std::size_t>(
      args.get_int("extras_subs", static_cast<int>(max_subs)));
  std::vector<std::size_t> shard_sweep;
  for (const double s : args.get_double_list("shard_list",
                                             {1.0, 2.0, 4.0, 16.0, 32.0})) {
    if (s >= 1.0) shard_sweep.push_back(static_cast<std::size_t>(s));
  }

  std::fprintf(stderr,
               "match-scaling probe (max %zu subs, %zu probes, %zu churn "
               "ops, budget %.0f s)\n",
               max_subs, probes, churn_ops, budget_ms / 1000.0);

  // Population sweep, both engines, escalation gated on the wall budget.
  bool alive = true;
  if (do_sweep) {
    std::vector<std::size_t> sweep;
    for (std::size_t n = 10000; n < max_subs; n *= 10) sweep.push_back(n);
    sweep.push_back(max_subs);
    for (const std::size_t subs : sweep) {
      if (!alive) {
        Probe skipped;
        skipped.subs = subs;
        skipped.engine = "sharded";
        skipped.error = "skipped: previous row blew the budget";
        emit(skipped);
        continue;
      }
      const auto row_start = Clock::now();
      emit(run_reference(subs, probes));
      emit(run_sharded(subs, MatchFabricOptions{}.shards,
                       /*covering=*/true, probes, churn_ops));
      if (ms_since(row_start) > budget_ms) alive = false;
    }
  }

  if (alive) {
    if (do_ablation) {
      // Covering ablation: same corpus, merging off.
      emit(run_sharded(extras_subs, MatchFabricOptions{}.shards,
                       /*covering=*/false, probes, churn_ops));
      // Compile-tier ablation: same corpus, programs off — the interpret
      // baseline the compiled rows above are compared against (PERF.md
      // compiled-programs table).
      emit(run_sharded(extras_subs, MatchFabricOptions{}.shards,
                       /*covering=*/true, probes, churn_ops,
                       /*compile_hits=*/0));
    }
    // Shard-count sensitivity (PERF.md table).
    for (const std::size_t shards : shard_sweep) {
      emit(run_sharded(extras_subs, shards, /*covering=*/true, probes,
                       churn_ops));
    }
  }
  return 0;
}
