// Fault-storm SLA report for BENCH_pr6.json.
//
// Runs one overlay + workload through a set of fault scenarios (calm
// baseline, single link outage, region storm, region storm with
// incremental SPT repair) under each scheduling strategy, grades every
// run with the windowed SLA tracker (stats/sla.h) and prints a text
// table plus a JSON document:
//
//   * delivery rate / earning — the run's aggregate outcome,
//   * worst-window hit-rate and max purge fraction — the storm's depth,
//   * max p99 queue residence — how long copies sat behind dead links,
//   * time-to-recover — the breach span at the 95% hit-rate floor.
//
//   ./build/storm_report [brokers=20] [duration_s=120] [rate=30]
//                        [seed=31] [window_s=5]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/paper.h"
#include "experiment/sweep.h"
#include "stats/series.h"

namespace {

using namespace bdps;

struct Scenario {
  std::string name;
  bool repair = false;
  FaultPlan faults;
  std::vector<WorkloadConfig::PublishBurst> bursts;
};

struct Graded {
  SlaRun run;
  double worst_hit_rate = 1.0;
  double max_purge_fraction = 0.0;
  TimeMs max_p99_residence = 0.0;
};

Graded grade(const SimConfig& config, TimeMs window_ms) {
  Graded graded;
  graded.run = run_with_sla(config, window_ms);
  for (const SlaWindow& window : graded.run.windows) {
    if (!window.active()) continue;
    graded.worst_hit_rate = std::min(graded.worst_hit_rate, window.hit_rate);
    graded.max_purge_fraction =
        std::max(graded.max_purge_fraction, window.purge_fraction);
    graded.max_p99_residence =
        std::max(graded.max_p99_residence, window.p99_residence_ms);
  }
  return graded;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t brokers = 20;
  double duration_s = 120.0;
  double rate_per_min = 30.0;
  std::uint64_t seed = 31;
  double window_s = 5.0;
  if (argc > 1) brokers = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) duration_s = std::atof(argv[2]);
  if (argc > 3) rate_per_min = std::atof(argv[3]);
  if (argc > 4) seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  if (argc > 5) window_s = std::atof(argv[5]);

  const std::vector<StrategyKind> strategies = {
      StrategyKind::kEb, StrategyKind::kPc, StrategyKind::kEbpc,
      StrategyKind::kLowerBound};

  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{"calm", false, {}});
  {
    Scenario s{"link_outage", false, {}};
    s.faults.link_outages.push_back(
        LinkOutage{seconds(0.2 * duration_s), seconds(0.45 * duration_s),
                   0, 1});
    scenarios.push_back(std::move(s));
  }
  {
    RegionStorm storm;
    storm.at = seconds(0.25 * duration_s);
    storm.epicenter = static_cast<BrokerId>(brokers / 3);
    storm.radius = 2;
    storm.recovery_delay = seconds(0.2 * duration_s);
    storm.recovery_jitter = seconds(0.05 * duration_s);
    storm.kill_brokers = true;
    Scenario s{"region_storm", false, {}};
    s.faults.storms.push_back(storm);
    scenarios.push_back(s);
    s.name = "region_storm_repair";
    s.repair = true;
    scenarios.push_back(std::move(s));
  }
  {
    // Flash crowd riding on a link flap: queue pressure while capacity
    // blinks — the regime where the pick strategies separate.
    Scenario s{"flash_crowd_flap", false, {}, {}};
    s.bursts.push_back(WorkloadConfig::PublishBurst{
        seconds(0.3 * duration_s), seconds(0.25 * duration_s), 8.0});
    s.faults.flaps.push_back(LinkFlap{0, 1, seconds(0.3 * duration_s),
                                      seconds(0.1 * duration_s),
                                      seconds(0.05 * duration_s), 3});
    scenarios.push_back(std::move(s));
  }

  TextTable table({"scenario", "strategy", "delivery_rate", "earning",
                   "purged", "lost", "worst_hit", "max_purge_frac",
                   "max_p99_ms", "ttr_s"});
  std::string json = "{\n  \"window_ms\": " +
                     TextTable::fixed(seconds(window_s), 0) +
                     ",\n  \"scenarios\": [\n";
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& scenario = scenarios[si];
    json += "    {\"name\": \"" + scenario.name + "\", \"strategies\": [\n";
    for (std::size_t ki = 0; ki < strategies.size(); ++ki) {
      const StrategyKind kind = strategies[ki];
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, rate_per_min, kind, seed);
      config.workload.duration = seconds(duration_s);
      config.topology = TopologyKind::kRandomMesh;
      config.broker_count = brokers;
      config.extra_edges = brokers;  // Detours for repair to exploit.
      // Fast links: transit sits inside the SSD deadlines, so degradation
      // is attributable to the faults, not the calm backlog.
      config.link_mean_lo_ms_per_kb = 2.0;
      config.link_mean_hi_ms_per_kb = 4.0;
      config.link_stddev_ms_per_kb = 1.0;
      config.repair_routing = scenario.repair;
      config.faults = scenario.faults;
      config.workload.bursts = scenario.bursts;

      const Graded graded = grade(config, seconds(window_s));
      const SimResult& r = graded.run.result;
      table.add_row_values(
          scenario.name, strategy_name(kind),
          TextTable::fixed(r.delivery_rate, 4), TextTable::fixed(r.earning, 1),
          r.purged_expired + r.purged_hopeless, r.lost_copies,
          TextTable::fixed(graded.worst_hit_rate, 3),
          TextTable::fixed(graded.max_purge_fraction, 3),
          TextTable::fixed(graded.max_p99_residence, 0),
          TextTable::fixed(graded.run.time_to_recover / 1000.0, 1));

      json += "      {\"strategy\": \"" + strategy_name(kind) + "\"";
      json += ", \"delivery_rate\": " + TextTable::fixed(r.delivery_rate, 6);
      json += ", \"earning\": " + TextTable::fixed(r.earning, 2);
      json += ", \"valid_deliveries\": " + std::to_string(r.valid_deliveries);
      json += ", \"deliveries\": " + std::to_string(r.deliveries);
      json +=
          ", \"purged\": " + std::to_string(r.purged_expired +
                                            r.purged_hopeless);
      json += ", \"lost\": " + std::to_string(r.lost_copies);
      json += ", \"worst_hit_rate\": " +
              TextTable::fixed(graded.worst_hit_rate, 4);
      json += ", \"max_purge_fraction\": " +
              TextTable::fixed(graded.max_purge_fraction, 4);
      json += ", \"max_p99_residence_ms\": " +
              TextTable::fixed(graded.max_p99_residence, 1);
      json += ", \"time_to_recover_ms\": " +
              TextTable::fixed(graded.run.time_to_recover, 0);
      json += "}";
      json += ki + 1 < strategies.size() ? ",\n" : "\n";
    }
    json += "    ]}";
    json += si + 1 < scenarios.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  table.print(std::cout);
  std::cout << "\n" << json;
  return 0;
}
