// Live-runtime link-ceiling probe — the numbers behind BENCH_pr7.json.
//
// Sweeps the star-of-chains broom over link counts and runs the same
// flood workload through both execution modes, recording wall time,
// sustained link-transmissions per second, thread count, and whether the
// mode completed at all.  Reactor rows run the whole overlay in one
// process; socket rows split it into a 2-shard in-process cluster whose
// cut edges ride loopback TCP trunks — the same transport the distributed
// daemon (tools/brokerd) runs one-shard-per-process, so the gap between
// the two curves is the wire cost per transmission.  Socket rows get a
// wall budget per row (default 120 s); once a row blows the budget or
// fails, larger rows are marked infeasible without being attempted.
// Reactor rows also sweep the `workers` knob at a mid scale.
//
//   ./live_scaling [budget_s=120] [messages=4]
//
// Output: one JSON object per line, plus a summary table on stderr.
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "experiment/live.h"
#include "routing/fabric.h"
#include "topology/builders.h"

using namespace bdps;

namespace {

struct Row {
  std::size_t chains = 0;
  std::size_t depth = 0;
  bool reactor_only = false;
};

struct Probe {
  std::size_t links = 0;
  std::string mode;
  std::size_t workers = 0;
  std::size_t threads = 0;  // OS threads the mode needs.
  bool completed = false;
  std::string error;
  double wall_ms = 0.0;
  double tx_per_sec = 0.0;
  unsigned long long trunk_forwards = 0;  // Copies that crossed TCP.
};

LiveOptions probe_options(std::size_t workers) {
  LiveOptions opt;
  opt.processing_delay = 0.1;
  opt.speedup = 20000.0;
  opt.workers = workers;
  return opt;
}

Probe run_probe_reactor(const Topology& topo, const RoutingFabric& fabric,
                        const Strategy& strategy, std::size_t workers,
                        int messages) {
  Probe probe;
  probe.links = topo.graph.edge_count() / 2;  // Directed hub->leaf side.
  probe.mode = "reactor";
  try {
    LiveNetwork net(&topo, &fabric, &strategy, probe_options(workers));
    const auto start = std::chrono::steady_clock::now();
    net.start();
    const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
    for (int i = 0; i < messages; ++i) net.publish(0, tick);
    net.drain();
    const auto end = std::chrono::steady_clock::now();
    net.stop();
    probe.workers = net.worker_count();
    probe.threads = net.worker_count();
    probe.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    probe.completed = net.stats().deliveries().size() ==
                      static_cast<std::size_t>(messages) *
                          topo.subscriber_count();
    if (!probe.completed) probe.error = "lost deliveries";
    probe.tx_per_sec = probe.wall_ms > 0.0
                           ? 1000.0 * static_cast<double>(messages) *
                                 static_cast<double>(net.link_count()) /
                                 probe.wall_ms
                           : 0.0;
  } catch (const std::exception& e) {
    probe.error = e.what();
  }
  return probe;
}

/// 2-shard in-process cluster over loopback trunks: the socket-mode row.
Probe run_probe_socket(const Topology& topo, const RoutingFabric& fabric,
                       const Strategy& strategy, int messages) {
  Probe probe;
  probe.links = topo.graph.edge_count() / 2;
  probe.mode = "socket_x2";
  try {
    const std::vector<std::uint32_t> broker_shard =
        live_broker_shards(topo.graph, 2);
    std::vector<std::unique_ptr<LiveNetwork>> nets;
    std::vector<LiveNetwork*> raw;
    for (int shard = 0; shard < 2; ++shard) {
      LiveOptions opt = probe_options(0);
      opt.mode = LiveMode::kSocket;
      opt.net.shard = shard;
      opt.net.shard_count = 2;
      opt.net.broker_shard = broker_shard;
      nets.push_back(
          std::make_unique<LiveNetwork>(&topo, &fabric, &strategy, opt));
      raw.push_back(nets.back().get());
    }
    const std::vector<std::uint16_t> ports = {nets[0]->trunk_port(),
                                              nets[1]->trunk_port()};
    for (const auto& net : nets) net->connect_trunks(ports);
    const auto start = std::chrono::steady_clock::now();
    for (const auto& net : nets) net->start();
    for (const auto& net : nets) {
      if (!net->wait_trunks(std::chrono::milliseconds(10000))) {
        throw std::runtime_error("trunks never came up");
      }
    }
    const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
    LiveNetwork* hub_home = nets[0]->serves(0) ? raw[0] : raw[1];
    for (int i = 0; i < messages; ++i) hub_home->publish(0, tick);
    drain_live_cluster(raw);
    const auto end = std::chrono::steady_clock::now();
    std::size_t delivered = 0;
    std::size_t links = 0;
    for (const auto& net : nets) {
      net->stop();
      delivered += net->stats().deliveries().size();
      links += net->link_count();
      probe.workers += net->worker_count();
      probe.trunk_forwards += net->trunk_forwards_sent();
    }
    // Each shard runs its worker pool plus the endpoint's net thread.
    probe.threads = probe.workers + 2;
    probe.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    probe.completed = delivered == static_cast<std::size_t>(messages) *
                                       topo.subscriber_count();
    if (!probe.completed) probe.error = "lost deliveries";
    probe.tx_per_sec =
        probe.wall_ms > 0.0 ? 1000.0 * static_cast<double>(messages) *
                                  static_cast<double>(links) / probe.wall_ms
                            : 0.0;
  } catch (const std::exception& e) {
    probe.error = e.what();
  }
  return probe;
}

/// Backslash-escapes quotes/backslashes and strips control characters, so
/// an arbitrary exception message cannot break the JSON output line.
std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

void emit(const Probe& p) {
  const std::string error = escape(p.error);
  std::printf(
      "{\"links\": %zu, \"mode\": \"%s\", \"workers\": %zu, "
      "\"threads\": %zu, \"completed\": %s, \"wall_ms\": %.1f, "
      "\"tx_per_sec\": %.0f, \"trunk_forwards\": %llu%s%s%s}\n",
      p.links, p.mode.c_str(), p.workers, p.threads,
      p.completed ? "true" : "false", p.wall_ms, p.tx_per_sec,
      p.trunk_forwards, error.empty() ? "" : ", \"error\": \"", error.c_str(),
      error.empty() ? "" : "\"");
  std::fflush(stdout);
  std::fprintf(stderr, "%-16s %7zu links  %6zu threads  %9.1f ms  %s\n",
               p.mode.c_str(), p.links, p.threads, p.wall_ms,
               p.completed ? "ok" : p.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const double budget_ms = args.get_double("budget_s", 120.0) * 1000.0;
  const int messages = static_cast<int>(args.get_int("messages", 4));

  const std::vector<Row> rows = {
      {16, 16, false},    // 256 links
      {32, 32, false},    // 1k
      {64, 64, false},    // 4k
      {128, 64, false},   // 8k
      {128, 128, false},  // 16k
      {256, 128, true},   // 32k — reactor only
  };

  std::fprintf(stderr, "live link-scaling probe (%d msgs, budget %.0f s)\n",
               messages, budget_ms / 1000.0);
  bool socket_mode_alive = true;
  for (const Row& row : rows) {
    const Topology topo =
        build_star_of_chains(row.chains, row.depth, LinkParams{0.2, 0.02});
    const RoutingFabric fabric(topo, flood_subscriptions(topo));
    const auto strategy = make_strategy(StrategyKind::kEb);

    emit(run_probe_reactor(topo, fabric, *strategy, 0, messages));

    if (row.reactor_only) continue;
    if (!socket_mode_alive) {
      Probe skipped;
      skipped.links = row.chains * row.depth;
      skipped.mode = "socket_x2";
      skipped.error = "skipped: previous row failed or blew the budget";
      emit(skipped);
      continue;
    }
    const Probe probe = run_probe_socket(topo, fabric, *strategy, messages);
    emit(probe);
    if (!probe.completed || probe.wall_ms > budget_ms) {
      socket_mode_alive = false;  // The ceiling: stop escalating.
    }
  }

  // Worker-count sweep at a mid scale (the PERF.md thread-count table).
  {
    const Topology topo = build_star_of_chains(64, 64, LinkParams{0.2, 0.02});
    const RoutingFabric fabric(topo, flood_subscriptions(topo));
    const auto strategy = make_strategy(StrategyKind::kEb);
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      emit(run_probe_reactor(topo, fabric, *strategy, workers, messages));
    }
  }
  return 0;
}
