// Live-runtime link-ceiling probe — the numbers behind BENCH_pr5.json.
//
// Sweeps the star-of-chains broom over link counts and runs the same
// flood workload through both execution modes, recording wall time,
// sustained link-transmissions per second, peak thread count, and whether
// the mode completed at all.  Thread-per-link is given a wall budget per
// row (default 120 s); once it blows the budget or fails to spawn, larger
// rows are marked infeasible without being attempted — that boundary is
// the "practical link ceiling" ISSUE/PERF.md quote.  Reactor rows also
// sweep the `workers` knob at the largest size.
//
//   ./live_scaling [budget_s=120] [messages=4]
//
// Output: one JSON object per line, plus a summary table on stderr.
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "experiment/live.h"
#include "routing/fabric.h"
#include "topology/builders.h"

using namespace bdps;

namespace {

struct Row {
  std::size_t chains = 0;
  std::size_t depth = 0;
  bool reactor_only = false;
};

struct Probe {
  std::size_t links = 0;
  std::string mode;
  std::size_t workers = 0;
  std::size_t threads = 0;  // OS threads the mode needs.
  bool completed = false;
  std::string error;
  double wall_ms = 0.0;
  double tx_per_sec = 0.0;
};

Probe run_probe(const Topology& topo, const RoutingFabric& fabric,
                const Strategy& strategy, LiveMode mode, std::size_t workers,
                int messages) {
  Probe probe;
  probe.links = topo.graph.edge_count() / 2;  // Directed hub->leaf side.
  probe.mode = mode == LiveMode::kReactor ? "reactor" : "thread_per_link";
  LiveOptions opt;
  opt.processing_delay = 0.1;
  opt.speedup = 20000.0;
  opt.mode = mode;
  opt.workers = workers;
  try {
    LiveNetwork net(&topo, &fabric, &strategy, opt);
    const auto start = std::chrono::steady_clock::now();
    net.start();
    const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
    for (int i = 0; i < messages; ++i) net.publish(0, tick);
    net.drain();
    const auto end = std::chrono::steady_clock::now();
    net.stop();
    probe.workers = net.worker_count();
    probe.threads = mode == LiveMode::kReactor
                        ? net.worker_count()
                        : topo.graph.broker_count() + net.link_count();
    probe.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    probe.completed = net.stats().deliveries().size() ==
                      static_cast<std::size_t>(messages) *
                          topo.subscriber_count();
    if (!probe.completed) probe.error = "lost deliveries";
    probe.tx_per_sec = probe.wall_ms > 0.0
                           ? 1000.0 * static_cast<double>(messages) *
                                 static_cast<double>(net.link_count()) /
                                 probe.wall_ms
                           : 0.0;
  } catch (const std::exception& e) {
    probe.error = e.what();  // E.g. thread spawn failure at scale.
  }
  return probe;
}

/// Backslash-escapes quotes/backslashes and strips control characters, so
/// an arbitrary exception message cannot break the JSON output line.
std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

void emit(const Probe& p) {
  const std::string error = json_escape(p.error);
  std::printf(
      "{\"links\": %zu, \"mode\": \"%s\", \"workers\": %zu, "
      "\"threads\": %zu, \"completed\": %s, \"wall_ms\": %.1f, "
      "\"tx_per_sec\": %.0f%s%s%s}\n",
      p.links, p.mode.c_str(), p.workers, p.threads,
      p.completed ? "true" : "false", p.wall_ms, p.tx_per_sec,
      error.empty() ? "" : ", \"error\": \"", error.c_str(),
      error.empty() ? "" : "\"");
  std::fflush(stdout);
  std::fprintf(stderr, "%-16s %7zu links  %6zu threads  %9.1f ms  %s\n",
               p.mode.c_str(), p.links, p.threads, p.wall_ms,
               p.completed ? "ok" : p.error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const double budget_ms = args.get_double("budget_s", 120.0) * 1000.0;
  const int messages = static_cast<int>(args.get_int("messages", 4));

  const std::vector<Row> rows = {
      {16, 16, false},    // 256 links
      {32, 32, false},    // 1k
      {64, 64, false},    // 4k
      {128, 64, false},   // 8k
      {128, 128, false},  // 16k
      {256, 128, true},   // 32k — reactor only
  };

  std::fprintf(stderr, "live link-scaling probe (%d msgs, budget %.0f s)\n",
               messages, budget_ms / 1000.0);
  bool thread_mode_alive = true;
  for (const Row& row : rows) {
    const Topology topo =
        build_star_of_chains(row.chains, row.depth, LinkParams{0.2, 0.02});
    const RoutingFabric fabric(topo, flood_subscriptions(topo));
    const auto strategy = make_strategy(StrategyKind::kEb);

    emit(run_probe(topo, fabric, *strategy, LiveMode::kReactor, 0, messages));

    if (row.reactor_only) continue;
    if (!thread_mode_alive) {
      Probe skipped;
      skipped.links = row.chains * row.depth;
      skipped.mode = "thread_per_link";
      skipped.threads = topo.graph.broker_count() + row.chains * row.depth;
      skipped.error = "skipped: previous row failed or blew the budget";
      emit(skipped);
      continue;
    }
    const Probe probe = run_probe(topo, fabric, *strategy,
                                  LiveMode::kThreadPerLink, 0, messages);
    emit(probe);
    if (!probe.completed || probe.wall_ms > budget_ms) {
      thread_mode_alive = false;  // The ceiling: stop escalating.
    }
  }

  // Worker-count sweep at a mid scale (the PERF.md thread-count table).
  {
    const Topology topo = build_star_of_chains(64, 64, LinkParams{0.2, 0.02});
    const RoutingFabric fabric(topo, flood_subscriptions(topo));
    const auto strategy = make_strategy(StrategyKind::kEb);
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      emit(run_probe(topo, fabric, *strategy, LiveMode::kReactor, workers,
                     messages));
    }
  }
  return 0;
}
