// brokerd — the distributed broker daemon, and the controller that spawns
// a loopback cluster of them.
//
// Controller mode (the default):
//   ./brokerd shards=4 [config=FILE | key=value ...]
// spawns one daemon process per shard (re-exec'ing this binary), pushes
// the serialized config over the control plane, exchanges trunk ports,
// starts every shard's publish/fault driver, waits for cluster-wide
// quiescence and prints one JSON object with the merged totals — or
// {"error": "..."} (JSON-escaped) on any spawn/bind/protocol failure.
// Inline key=value tokens use format_live_config's vocabulary (seed=7
// topology=scale-free rate_per_min=60 ...); config=FILE loads a file in
// the same format (e.g. one written by format_live_config).
//
// Daemon mode (spawned by the controller, not usually by hand):
//   ./brokerd daemon=1 controller_port=PORT shard=S
// dials the controller, rebuilds the identical world from the config it
// receives, and serves one LiveMode::kSocket shard until kShutdown.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.h"
#include "experiment/cluster.h"

using namespace bdps;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);

  if (args.get_bool("daemon", false)) {
    const int port = args.get_int("controller_port", 0);
    const int shard = args.get_int("shard", -1);
    if (port <= 0 || port > 65535 || shard < 0) {
      std::fprintf(stderr,
                   "brokerd daemon: need controller_port=1..65535 and "
                   "shard=0..\n");
      return 2;
    }
    return run_live_daemon(static_cast<std::uint16_t>(port), shard);
  }

  try {
    LiveRunConfig config;
    const std::string config_path = args.get_string("config", "");
    if (!config_path.empty()) {
      std::ifstream in(config_path);
      if (!in) {
        throw std::runtime_error("cannot read config file: " + config_path);
      }
      std::ostringstream text;
      text << in.rdbuf();
      config = parse_live_config(text.str());
    } else {
      // Inline overrides are the config-file vocabulary, one token per
      // line.
      std::ostringstream text;
      for (int i = 1; i < argc; ++i) text << argv[i] << '\n';
      config = parse_live_config(text.str());
    }
    config.mode = LiveMode::kSocket;
    if (config.shards < 2) config.shards = 4;

    const LiveRunResult result = run_live_cluster(config, argv[0]);
    std::printf(
        "{\"shards\": %zu, \"published\": %zu, \"receptions\": %zu, "
        "\"deliveries\": %zu, \"valid_deliveries\": %zu, \"purged\": %zu, "
        "\"lost\": %zu, \"earning\": %.6f, \"trunk_forwards\": %llu, "
        "\"wall_ms\": %.1f}\n",
        config.shards, result.published, result.receptions, result.deliveries,
        result.valid_deliveries, result.purged, result.lost, result.earning,
        static_cast<unsigned long long>(result.trunk_forwards),
        result.wall_ms);
    return 0;
  } catch (const std::exception& error) {
    std::printf("{\"error\": \"%s\"}\n", json_escape(error.what()).c_str());
    return 1;
  }
}
