// Sharded-engine speedup probe for BENCH_pr4.json.
//
// Runs the dense scale-free workload (micro_parallel_sim's configuration)
// through the sequential engine and through ParallelSimulator at a sweep of
// shard counts, verifying bitwise-identical collector output, and reports:
//
//   * wall time per engine (what a multi-core host experiences directly),
//   * the engine's per-thread-CPU accounting: total lane work, per-round
//     critical path (slowest lane per window, summed) and the serial
//     merge cost — from which the modeled P-core wall
//     `critical_path + merge` and the modeled speedup
//     `sequential_wall / modeled_wall` are derived.
//
// The modeled number is the honest headline on hosts without P free cores
// (CPU clocks are immune to timeslicing); on an idle multi-core machine,
// measured wall converges to the model minus barrier overhead.
//
//   ./build-bench/parallel_speedup [brokers=4096] [minutes=1] [shards=...]
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "routing/fabric.h"
#include "sim/parallel/parallel_simulator.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace {

using namespace bdps;

double wall_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

struct Rig {
  Topology topology;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy;
  SimulatorOptions options;
  Rng link_rng{0};
  std::vector<std::shared_ptr<const Message>> messages;

  explicit Rig(const SimConfig& config) {
    // Mirrors run_simulation's setup so results line up with the runner.
    Rng root(config.seed);
    Rng topology_rng = root.split();
    Rng workload_rng = root.split();
    link_rng = root.split();
    topology = build_topology(topology_rng, config);
    std::vector<Subscription> subscriptions =
        generate_subscriptions(workload_rng, config.workload, topology);
    fabric = std::make_unique<RoutingFabric>(topology,
                                             std::move(subscriptions));
    strategy = make_strategy(config.strategy, config.ebpc_weight);
    options.processing_delay = config.processing_delay;
    options.purge = config.purge;
    options.horizon = config.workload.duration + config.drain_grace;
    options.online_estimation = config.online_estimation;
    messages = generate_messages(workload_rng, config.workload,
                                 topology.publisher_count());
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t brokers = 4096;
  double window_minutes = 1.0;
  double rate_per_min = 60.0;
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "brokers") brokers = std::strtoull(value.c_str(), nullptr, 10);
    if (key == "minutes") window_minutes = std::strtod(value.c_str(), nullptr);
    if (key == "rate") rate_per_min = std::strtod(value.c_str(), nullptr);
    if (key == "shards") {
      shard_counts.clear();
      for (std::size_t pos = 0; pos < value.size();) {
        shard_counts.push_back(std::strtoull(value.c_str() + pos, nullptr, 10));
        pos = value.find(',', pos);
        if (pos == std::string::npos) break;
        ++pos;
      }
    }
  }

  SimConfig config =
      paper_base_config(ScenarioKind::kSsd, rate_per_min, StrategyKind::kEbpc, 1);
  config.topology = TopologyKind::kScaleFree;
  config.broker_count = brokers;
  config.scale_free_edges_per_node = 4;
  config.publisher_count = 8;
  config.subscriber_count = brokers * 4;
  config.online_estimation = true;
  config.workload.duration = minutes(window_minutes);

  const Rig rig(config);

  // Sequential baseline.
  double sequential_wall;
  double sequential_earning;
  std::size_t sequential_receptions;
  {
    Simulator simulator(&rig.topology, &rig.topology.graph, rig.fabric.get(),
                        rig.strategy.get(), rig.options, rig.link_rng);
    for (const auto& message : rig.messages) {
      simulator.schedule_publish(message);
    }
    const double start = wall_ms();
    simulator.run();
    sequential_wall = wall_ms() - start;
    sequential_earning = simulator.collector().earning();
    sequential_receptions = simulator.collector().receptions();
  }
  std::printf(
      "dense scale-free: %zu brokers, %.0f min window, %zu receptions\n"
      "sequential engine: %.1f ms wall\n\n",
      brokers, window_minutes, sequential_receptions, sequential_wall);
  std::printf(
      "%6s %10s %10s %12s %12s %9s %8s %13s %13s\n", "P", "wall_ms",
      "lane_ms", "critical_ms", "serial_ms", "rounds", "cut", "modeled_ms",
      "modeled_x");

  for (const std::size_t shards : shard_counts) {
    SimulatorOptions options = rig.options;
    options.shards = shards;
    ParallelSimulator simulator(&rig.topology, &rig.topology.graph,
                                rig.fabric.get(), rig.strategy.get(), options,
                                rig.link_rng);
    for (const auto& message : rig.messages) {
      simulator.schedule_publish(message);
    }
    const double start = wall_ms();
    simulator.run();
    const double wall = wall_ms() - start;
    if (simulator.collector().earning() != sequential_earning ||
        simulator.collector().receptions() != sequential_receptions) {
      std::fprintf(stderr, "FATAL: P=%zu output diverged\n", shards);
      return 1;
    }
    const auto& stats = simulator.stats();
    const double serial = stats.merge_ms + stats.horizon_ms;
    const double modeled = stats.critical_path_ms + serial;
    std::printf("%6zu %10.1f %10.1f %12.1f %12.1f %9zu %8zu %13.1f %13.2f\n",
                shards, wall, stats.worker_cpu_ms, stats.critical_path_ms,
                serial, stats.rounds, simulator.plan().cut_edges().size(),
                modeled, sequential_wall / modeled);
    std::printf("       bound_ms=%.1f shard_cpu=[", stats.bound_ms);
    for (const double ms : stats.shard_cpu_ms) std::printf(" %.0f", ms);
    std::printf(" ]\n");
  }
  return 0;
}
